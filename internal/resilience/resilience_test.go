package resilience

import (
	"testing"
	"time"

	"flock/internal/stats"
)

func TestBackoffJitterBounds(t *testing.T) {
	cases := []struct {
		name    string
		b       Backoff
		attempt int
		ceil    time.Duration // inclusive upper bound of the draw
	}{
		{"attempt0", Backoff{Base: 100 * time.Microsecond, Cap: time.Millisecond}, 0, 100 * time.Microsecond},
		{"attempt1-doubles", Backoff{Base: 100 * time.Microsecond, Cap: time.Millisecond}, 1, 200 * time.Microsecond},
		{"attempt3", Backoff{Base: 100 * time.Microsecond, Cap: time.Millisecond}, 3, 800 * time.Microsecond},
		{"capped", Backoff{Base: 100 * time.Microsecond, Cap: time.Millisecond}, 10, time.Millisecond},
		{"uncapped", Backoff{Base: time.Microsecond}, 4, 16 * time.Microsecond},
		{"overflow-guard", Backoff{Base: time.Hour}, 64, 1 << 62},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := stats.NewRNG(42)
			for i := 0; i < 1000; i++ {
				d := tc.b.Delay(tc.attempt, rng)
				if d < 0 || d > tc.ceil {
					t.Fatalf("Delay(%d) = %v, want in [0, %v]", tc.attempt, d, tc.ceil)
				}
			}
		})
	}
}

func TestBackoffZeroBase(t *testing.T) {
	rng := stats.NewRNG(1)
	if d := (Backoff{}).Delay(5, rng); d != 0 {
		t.Fatalf("zero-base Delay = %v, want 0", d)
	}
}

func TestBackoffDeterministic(t *testing.T) {
	b := Backoff{Base: 50 * time.Microsecond, Cap: time.Millisecond}
	r1, r2 := stats.NewRNG(7), stats.NewRNG(7)
	for i := 0; i < 64; i++ {
		d1, d2 := b.Delay(i%6, r1), b.Delay(i%6, r2)
		if d1 != d2 {
			t.Fatalf("attempt %d: same seed diverged: %v vs %v", i, d1, d2)
		}
	}
}

func TestBudgetAccounting(t *testing.T) {
	b := NewBudget(0.1, 3)
	if got := b.Tokens(); got != 3 {
		t.Fatalf("fresh budget Tokens = %v, want 3 (starts full)", got)
	}
	// Drain the burst.
	for i := 0; i < 3; i++ {
		if !b.TryRetry() {
			t.Fatalf("retry %d denied with tokens remaining", i)
		}
	}
	if b.TryRetry() {
		t.Fatal("retry allowed on empty budget")
	}
	if got := b.Denied(); got != 1 {
		t.Fatalf("Denied = %d, want 1", got)
	}
	// Ten successes at ratio 0.1 earn exactly one token.
	for i := 0; i < 9; i++ {
		b.OnSuccess()
		if b.TryRetry() {
			t.Fatalf("retry allowed after only %d successes (%.3f tokens)", i+1, b.Tokens())
		}
	}
	b.OnSuccess()
	if !b.TryRetry() {
		t.Fatalf("retry denied after 10 successes, tokens=%.3f", b.Tokens())
	}
	if got := b.Denied(); got != 10 {
		t.Fatalf("Denied = %d, want 10", got)
	}
}

func TestBudgetBurstCap(t *testing.T) {
	b := NewBudget(1.0, 2)
	for i := 0; i < 100; i++ {
		b.OnSuccess()
	}
	if got := b.Tokens(); got != 2 {
		t.Fatalf("Tokens = %v, want capped at burst 2", got)
	}
}

func TestBudgetNilAndDegenerate(t *testing.T) {
	var nilB *Budget
	if !nilB.TryRetry() {
		t.Fatal("nil budget must always allow retries")
	}
	nilB.OnSuccess() // must not panic

	zero := NewBudget(0, 0) // burst remapped to 1, earns nothing
	if !zero.TryRetry() {
		t.Fatal("burst-1 budget should allow the first retry")
	}
	if zero.TryRetry() {
		t.Fatal("zero-ratio budget must never refill")
	}
	zero.OnSuccess()
	if zero.TryRetry() {
		t.Fatal("zero-ratio budget earned a token from success")
	}
}

// fakeClock is an injectable clock for deterministic breaker transitions.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestBreakerTransitions(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := NewBreaker(3, 100*time.Millisecond, 1, clk.now)

	if b.State() != BreakerClosed {
		t.Fatalf("fresh breaker state = %v, want closed", b.State())
	}
	// Two failures: still closed.
	for i := 0; i < 2; i++ {
		if opened := b.Failure(); opened {
			t.Fatalf("failure %d opened breaker below threshold", i+1)
		}
	}
	if !b.Allow() {
		t.Fatal("closed breaker refused a request")
	}
	// Third consecutive failure trips it.
	if opened := b.Failure(); !opened {
		t.Fatal("threshold failure did not report opening")
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a request before cooldown")
	}

	// Cooldown elapses: half-open, exactly one probe admitted.
	clk.advance(100 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("half-open breaker refused the probe")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second probe (probes=1)")
	}

	// Probe succeeds: closed again, failure count reset.
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state after probe success = %v, want closed", b.State())
	}
	for i := 0; i < 2; i++ {
		b.Failure()
	}
	if b.State() != BreakerClosed {
		t.Fatal("failure count was not reset by recovery")
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := NewBreaker(1, 50*time.Millisecond, 1, clk.now)

	b.Failure() // trips (threshold 1)
	clk.advance(50 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("probe refused")
	}
	if opened := b.Failure(); !opened {
		t.Fatal("probe failure did not report re-opening")
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v, want open after probe failure", b.State())
	}
	// Cooldown re-armed from the probe failure, not the original trip.
	clk.advance(25 * time.Millisecond)
	if b.Allow() {
		t.Fatal("re-opened breaker admitted before re-armed cooldown elapsed")
	}
	clk.advance(25 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("re-opened breaker never half-opened")
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := NewBreaker(3, time.Second, 1, clk.now)
	// Interleaved successes keep the consecutive count below threshold.
	for i := 0; i < 10; i++ {
		b.Failure()
		b.Failure()
		b.Success()
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v, want closed: successes must reset the streak", b.State())
	}
}

func TestBreakerForceOpen(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := NewBreaker(100, time.Second, 1, clk.now)
	if !b.ForceOpen() {
		t.Fatal("ForceOpen on closed breaker returned false")
	}
	if b.ForceOpen() {
		t.Fatal("ForceOpen on already-open breaker returned true")
	}
	if b.Allow() {
		t.Fatal("force-opened breaker admitted a request")
	}
}

func TestBreakerHealthEWMA(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := NewBreaker(1000, time.Second, 1, clk.now)
	if got := b.Health(); got != 1 {
		t.Fatalf("fresh Health = %v, want 1", got)
	}
	b.Failure()
	if got := b.Health(); got != 0 {
		t.Fatalf("Health after first (failing) sample = %v, want 0", got)
	}
	prev := b.Health()
	for i := 0; i < 50; i++ {
		b.Success()
		h := b.Health()
		if h < prev {
			t.Fatalf("Health fell (%v -> %v) on a success", prev, h)
		}
		prev = h
	}
	if prev < 0.7 {
		t.Fatalf("Health after 50 successes = %v, want recovered above 0.7", prev)
	}
}

func TestBreakerNil(t *testing.T) {
	var b *Breaker
	if !b.Allow() {
		t.Fatal("nil breaker must allow")
	}
	b.Success()
	if b.Failure() {
		t.Fatal("nil breaker reported opening")
	}
	if b.State() != BreakerClosed || b.Health() != 1 {
		t.Fatal("nil breaker must report closed/healthy")
	}
}

func TestDedupWindowLifecycle(t *testing.T) {
	w := NewDedupWindow(4)
	k := DedupKey{Thread: 7, Key: 99}

	if _, out := w.Begin(k); out != DedupExecute {
		t.Fatalf("first Begin = %v, want Execute", out)
	}
	// Duplicate while the original is executing: pushback, never a second run.
	if _, out := w.Begin(k); out != DedupInflight {
		t.Fatalf("concurrent Begin = %v, want Inflight", out)
	}
	w.Commit(k, DedupResult{Status: 0, Data: []byte("pong")})
	res, out := w.Begin(k)
	if out != DedupHit {
		t.Fatalf("post-commit Begin = %v, want Hit", out)
	}
	if string(res.Data) != "pong" {
		t.Fatalf("cached Data = %q, want %q", res.Data, "pong")
	}
	if w.Hits() != 1 || w.Races() != 1 {
		t.Fatalf("Hits=%d Races=%d, want 1/1", w.Hits(), w.Races())
	}
}

func TestDedupWindowEviction(t *testing.T) {
	w := NewDedupWindow(2)
	for i := uint64(0); i < 5; i++ {
		k := DedupKey{Key: i}
		if _, out := w.Begin(k); out != DedupExecute {
			t.Fatalf("Begin(%d) = %v, want Execute", i, out)
		}
		w.Commit(k, DedupResult{Data: []byte{byte(i)}})
	}
	if got := w.Len(); got != 2 {
		t.Fatalf("Len = %d, want capacity 2", got)
	}
	// Oldest entries evicted: retrying key 0 re-executes (outside window).
	if _, out := w.Begin(DedupKey{Key: 0}); out != DedupExecute {
		t.Fatalf("evicted key Begin = %v, want Execute", out)
	}
	// Newest survive.
	if _, out := w.Begin(DedupKey{Key: 4}); out != DedupHit {
		t.Fatalf("resident key Begin = %v, want Hit", out)
	}
}

func TestDedupWindowReservationsNotEvicted(t *testing.T) {
	w := NewDedupWindow(1)
	pending := DedupKey{Key: 100}
	w.Begin(pending) // reservation, never committed yet
	for i := uint64(0); i < 10; i++ {
		k := DedupKey{Key: i}
		w.Begin(k)
		w.Commit(k, DedupResult{})
	}
	// The reservation must still be present: a duplicate sees Inflight.
	if _, out := w.Begin(pending); out != DedupInflight {
		t.Fatalf("reserved key Begin = %v, want Inflight (reservations are never evicted)", out)
	}
	w.Commit(pending, DedupResult{Data: []byte("late")})
	if res, out := w.Begin(pending); out != DedupHit || string(res.Data) != "late" {
		t.Fatalf("late commit lost: out=%v data=%q", out, res.Data)
	}
}

func TestDedupWindowAbort(t *testing.T) {
	w := NewDedupWindow(4)
	k := DedupKey{Key: 1}
	w.Begin(k)
	w.Abort(k)
	if _, out := w.Begin(k); out != DedupExecute {
		t.Fatalf("Begin after Abort = %v, want Execute", out)
	}
	w.Commit(k, DedupResult{})
	w.Abort(k) // aborting a committed entry is a no-op
	if _, out := w.Begin(k); out != DedupHit {
		t.Fatalf("Begin after no-op Abort = %v, want Hit", out)
	}
}

func TestDedupCommitWithoutBegin(t *testing.T) {
	w := NewDedupWindow(4)
	w.Commit(DedupKey{Key: 5}, DedupResult{Data: []byte("orphan")})
	if _, out := w.Begin(DedupKey{Key: 5}); out != DedupExecute {
		t.Fatalf("orphan Commit created an entry: Begin = %v, want Execute", out)
	}
}
