package rnic

import "sync"

// connCache models the RNIC's on-chip connection-context cache (QP state,
// congestion-control state — Figure 1 of the paper). It is an LRU over QP
// numbers: each work request touches the context of the QP it executes on,
// on both the requester and the responder device. A miss stands for a PCIe
// fetch of the context from host memory; the functional tier counts it and
// the DES tier charges it time.
//
// A capacity of zero disables the model (every access hits).
type connCache struct {
	mu        sync.Mutex
	capacity  int
	entries   map[cacheKey]*cacheNode
	head      *cacheNode // most recently used
	tail      *cacheNode // least recently used
	hits      uint64
	misses    uint64
	evictions uint64
}

// cacheKey identifies a cached connection context. Remote contexts (the
// responder caching the requester's connection) are distinguished by node.
type cacheKey struct {
	node int
	qpn  int
}

type cacheNode struct {
	key        cacheKey
	prev, next *cacheNode
}

func newConnCache(capacity int) *connCache {
	return &connCache{
		capacity: capacity,
		entries:  make(map[cacheKey]*cacheNode),
	}
}

// access touches the context for (node, qpn) and returns true on a hit.
func (c *connCache) access(node, qpn int) bool {
	if c.capacity <= 0 {
		return true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	k := cacheKey{node, qpn}
	if n := c.entries[k]; n != nil {
		c.hits++
		c.moveToFront(n)
		return true
	}
	c.misses++
	n := &cacheNode{key: k}
	c.entries[k] = n
	c.pushFront(n)
	if len(c.entries) > c.capacity {
		evict := c.tail
		c.unlink(evict)
		delete(c.entries, evict.key)
		c.evictions++
	}
	return false
}

// stats returns the hit, miss, and eviction counters.
func (c *connCache) stats() (hits, misses, evictions uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions
}

// len reports the number of resident contexts.
func (c *connCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

func (c *connCache) pushFront(n *cacheNode) {
	n.prev = nil
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *connCache) unlink(n *cacheNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *connCache) moveToFront(n *cacheNode) {
	if c.head == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}
