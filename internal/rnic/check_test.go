package rnic

import (
	"sync"
	"testing"

	"flock/internal/check"
	"flock/internal/fabric"
)

// Linearizability of the device's atomic verbs: concurrent fetch-adds
// from independent QPs against one remote word must observe pre-values
// that admit a sequential order — the device's atomic path may neither
// lose, duplicate, nor tear an add.
func TestAtomicsLinearizable(t *testing.T) {
	d1, d2 := testPair(t, fabric.Config{}, Config{}, Config{})
	remote, err := d2.RegisterMR(64, PermRemoteRead|PermRemoteWrite|PermRemoteAtomic)
	if err != nil {
		t.Fatal(err)
	}

	rec := check.NewRecorder()
	const nThreads, perThread = 6, 60
	var wg sync.WaitGroup
	for g := 0; g < nThreads; g++ {
		// Each worker gets its own QP and local MR; contention happens at
		// the remote word, which is the point.
		qa, _, err := ConnectPair(d1, d2, RC)
		if err != nil {
			t.Fatal(err)
		}
		local, err := d1.RegisterMR(8, 0)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(g int, qa *QP, local *MemRegion) {
			defer wg.Done()
			faa := func(delta uint64) (uint64, bool) {
				if err := qa.PostSend(SendWR{
					WRID: uint64(g), Op: OpFetchAdd, LocalMR: local,
					RKey: remote.RKey(), RemoteOff: 0, CompareAdd: delta, Signaled: true,
				}); err != nil {
					t.Errorf("post faa: %v", err)
					return 0, false
				}
				if c := pollOne(t, qa.SendCQ()); c.Status != StatusOK {
					t.Errorf("faa completion: %+v", c)
					return 0, false
				}
				return local.Load64(0), true
			}
			for i := 0; i < perThread; i++ {
				call := rec.Begin()
				old, ok := faa(1)
				if !ok {
					return
				}
				rec.End(g, call, check.CounterIn{Add: true, Delta: 1}, check.CounterOut{Val: old})
			}
			// Observer read: a zero-delta fetch-add returns the current
			// value atomically.
			call := rec.Begin()
			if cur, ok := faa(0); ok {
				rec.End(g, call, check.CounterIn{}, check.CounterOut{Val: cur})
			}
		}(g, qa, local)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	hist := rec.History()
	if len(hist) != nThreads*(perThread+1) {
		t.Fatalf("recorded %d ops, want %d", len(hist), nThreads*(perThread+1))
	}
	if res := check.Check(check.CounterModel(), hist); !res.Ok {
		t.Fatalf("atomic history not linearizable:\n%s", res)
	}
	if got := remote.Load64(0); got != nThreads*perThread {
		t.Fatalf("final counter %d, want %d", got, nThreads*perThread)
	}
}
