package rnic

import "sync"

// CQ is a completion queue. The RNIC pipeline pushes Completion entries;
// the application polls them off with Poll, exactly as with ibv_poll_cq.
// Safe for concurrent use; a CQ may be shared by several QPs (FLock's
// leader polls one send CQ for a whole connection handle).
type CQ struct {
	mu        sync.Mutex
	entries   []Completion
	depth     int
	overflows uint64
}

// NewCQ returns a completion queue that holds up to depth outstanding
// entries. Entries pushed beyond depth are dropped and counted as
// overflows — a real CQ overflow is fatal, so well-behaved callers size
// depth to their outstanding-request bound and assert Overflows() == 0.
func NewCQ(depth int) *CQ {
	if depth <= 0 {
		depth = 4096
	}
	return &CQ{depth: depth}
}

// push appends a completion (RNIC side).
func (cq *CQ) push(c Completion) {
	cq.mu.Lock()
	defer cq.mu.Unlock()
	if len(cq.entries) >= cq.depth {
		cq.overflows++
		return
	}
	cq.entries = append(cq.entries, c)
}

// Poll moves up to len(dst) completions into dst and returns how many were
// moved. It never blocks; zero means the queue was empty.
func (cq *CQ) Poll(dst []Completion) int {
	if len(dst) == 0 {
		return 0
	}
	cq.mu.Lock()
	defer cq.mu.Unlock()
	n := copy(dst, cq.entries)
	if n > 0 {
		rem := copy(cq.entries, cq.entries[n:])
		cq.entries = cq.entries[:rem]
	}
	return n
}

// Len reports the number of pending completions.
func (cq *CQ) Len() int {
	cq.mu.Lock()
	defer cq.mu.Unlock()
	return len(cq.entries)
}

// Overflows reports how many completions were lost to overflow.
func (cq *CQ) Overflows() uint64 {
	cq.mu.Lock()
	defer cq.mu.Unlock()
	return cq.overflows
}
