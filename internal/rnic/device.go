package rnic

import (
	"fmt"
	"sync"
	"sync/atomic"

	"flock/internal/fabric"
)

// Config configures a Device.
type Config struct {
	// Node is the device's fabric address.
	Node fabric.NodeID
	// CacheSize bounds the connection-context cache (Figure 1/2 of the
	// paper). Zero disables the model: every access hits. The paper's
	// ConnectX-5 sustains roughly a few hundred hot QPs before thrashing
	// (peak at 176–704 QPs in Figure 2a); the DES calibrates to that.
	CacheSize int
	// CQDepth is the default depth for completion queues created by this
	// device. Zero means 4096.
	CQDepth int
	// RNRRetries bounds how many times the pipeline re-attempts a send
	// that finds no receive buffer on an RC responder before completing
	// with StatusRNRExceeded. Zero means 1000.
	RNRRetries int
	// RCRetries bounds how many times the pipeline retransmits an RC work
	// request whose transmission the fabric faults (loss, corruption,
	// link-down) before completing it with StatusRetryExceeded and moving
	// the QP to the error state — the IBTA transport retry counter. Zero
	// means 7, the hardware maximum. Faults only occur when the fabric has
	// a FaultPlan installed.
	RCRetries int
}

// Counters aggregates device activity. All fields are written atomically by
// the pipeline and may be read at any time via Device.Stats.
type Counters struct {
	// Doorbells counts PostSend calls — MMIO writes on real hardware.
	Doorbells uint64
	// WorkRequests counts posted send-queue WRs.
	WorkRequests uint64
	// Processed counts WRs the pipeline has executed.
	Processed uint64
	// CacheHits and CacheMisses count connection-context cache accesses
	// on this device, both requester- and responder-side; CacheEvictions
	// counts contexts pushed out by capacity pressure (each eviction is a
	// future miss — the thrashing signature of Figure 2).
	CacheHits      uint64
	CacheMisses    uint64
	CacheEvictions uint64
	// PCIeFetchNanos accumulates the modeled time cost of fetching evicted
	// connection contexts back over PCIe (pcieFetchNs per miss). The
	// functional tier only accounts it; the DES tier charges it.
	PCIeFetchNanos uint64
	// MRLookups counts MTT/MPT translations: every rkey resolution on the
	// responder side of a one-sided verb.
	MRLookups uint64
	// CompletionsDelivered counts CQ entries generated; Suppressed counts
	// successful unsignaled WRs that generated none (selective
	// signaling's saving, §7).
	CompletionsDelivered  uint64
	CompletionsSuppressed uint64
	// PacketsTX and BytesTX count outbound wire traffic.
	PacketsTX uint64
	BytesTX   uint64
	// UDDropsNoRecv counts inbound UD sends discarded because the target
	// QP had no receive buffer posted.
	UDDropsNoRecv uint64
	// UDDropsWire counts UD packets the fabric lost in flight.
	UDDropsWire uint64
	// RNRWaits counts responder-not-ready retry iterations on RC.
	RNRWaits uint64
	// AtomicOps counts executed fetch-add/cmp-swap verbs.
	AtomicOps uint64
	// RCRetransmits counts RC transmission attempts repeated after an
	// injected fault; RCRetryExhausted counts WRs whose retry budget ran
	// out (each moves its QP to the error state).
	RCRetransmits    uint64
	RCRetryExhausted uint64
	// WRFlushed counts work requests flushed with StatusWRFlush when
	// their QP entered the error state.
	WRFlushed uint64
	// UDCorrupted counts UD payloads delivered corrupted by the fabric.
	UDCorrupted uint64
}

func (c *Counters) add(f *uint64, n uint64) { atomic.AddUint64(f, n) }

// snapshot copies the counters with atomic loads.
func (c *Counters) snapshot() Counters {
	return Counters{
		Doorbells:             atomic.LoadUint64(&c.Doorbells),
		WorkRequests:          atomic.LoadUint64(&c.WorkRequests),
		Processed:             atomic.LoadUint64(&c.Processed),
		CacheHits:             atomic.LoadUint64(&c.CacheHits),
		CacheMisses:           atomic.LoadUint64(&c.CacheMisses),
		CacheEvictions:        atomic.LoadUint64(&c.CacheEvictions),
		PCIeFetchNanos:        atomic.LoadUint64(&c.PCIeFetchNanos),
		MRLookups:             atomic.LoadUint64(&c.MRLookups),
		CompletionsDelivered:  atomic.LoadUint64(&c.CompletionsDelivered),
		CompletionsSuppressed: atomic.LoadUint64(&c.CompletionsSuppressed),
		PacketsTX:             atomic.LoadUint64(&c.PacketsTX),
		BytesTX:               atomic.LoadUint64(&c.BytesTX),
		UDDropsNoRecv:         atomic.LoadUint64(&c.UDDropsNoRecv),
		UDDropsWire:           atomic.LoadUint64(&c.UDDropsWire),
		RNRWaits:              atomic.LoadUint64(&c.RNRWaits),
		AtomicOps:             atomic.LoadUint64(&c.AtomicOps),
		RCRetransmits:         atomic.LoadUint64(&c.RCRetransmits),
		RCRetryExhausted:      atomic.LoadUint64(&c.RCRetryExhausted),
		WRFlushed:             atomic.LoadUint64(&c.WRFlushed),
		UDCorrupted:           atomic.LoadUint64(&c.UDCorrupted),
	}
}

// Device is one software RNIC attached to a fabric node. Its single
// pipeline goroutine executes work requests in doorbell order, mirroring
// the serialized processing unit of real NIC hardware; per-QP send
// ordering follows from it.
type Device struct {
	cfg   Config
	fab   *fabric.Fabric
	cache *connCache

	mu      sync.Mutex
	qps     map[int]*QP
	mrs     map[uint32]*MemRegion
	nextQPN int
	nextKey uint32

	work     chan *QP
	closed   chan struct{}
	wg       sync.WaitGroup
	inflight int64 // WRs posted but not yet fully executed

	// drainScratch stages one batch of WRs popped from a QP send queue.
	// It is touched only by the pipeline goroutine, so reusing it across
	// drain rounds is race-free and saves one allocation per round.
	drainScratch [drainBudget]SendWR

	counters Counters
}

// NewDevice creates a device, registers it on the fabric, and starts its
// pipeline. Close must be called to stop the pipeline.
func NewDevice(fab *fabric.Fabric, cfg Config) (*Device, error) {
	if cfg.RNRRetries <= 0 {
		cfg.RNRRetries = 1000
	}
	if cfg.RCRetries <= 0 {
		cfg.RCRetries = 7
	}
	if cfg.CQDepth <= 0 {
		cfg.CQDepth = 4096
	}
	d := &Device{
		cfg:     cfg,
		fab:     fab,
		cache:   newConnCache(cfg.CacheSize),
		qps:     make(map[int]*QP),
		mrs:     make(map[uint32]*MemRegion),
		nextQPN: 1,
		nextKey: 1,
		work:    make(chan *QP, 4096),
		closed:  make(chan struct{}),
	}
	if err := fab.Register(d); err != nil {
		return nil, err
	}
	d.wg.Add(1)
	go d.pipeline()
	return d, nil
}

// Node implements fabric.Endpoint.
func (d *Device) Node() fabric.NodeID { return d.cfg.Node }

// Fabric returns the fabric this device is attached to.
func (d *Device) Fabric() *fabric.Fabric { return d.fab }

// Stats returns a snapshot of the device counters. Eviction counts live in
// the connection cache and are folded in here.
func (d *Device) Stats() Counters {
	s := d.counters.snapshot()
	_, _, s.CacheEvictions = d.cache.stats()
	return s
}

// CacheStats returns the connection-context cache hit/miss counts and the
// number of resident contexts.
func (d *Device) CacheStats() (hits, misses uint64, resident int) {
	h, m, _ := d.cache.stats()
	return h, m, d.cache.len()
}

// Close stops the pipeline and detaches from the fabric. Posted but
// unprocessed WRs are abandoned.
func (d *Device) Close() {
	d.mu.Lock()
	select {
	case <-d.closed:
		d.mu.Unlock()
		return
	default:
	}
	close(d.closed)
	d.mu.Unlock()
	d.wg.Wait()
	d.fab.Unregister(d.cfg.Node)

	// The pipeline is gone; release pool leases owned by WRs it never got
	// to, so abandoning work at shutdown cannot leak buffers.
	d.mu.Lock()
	qps := make([]*QP, 0, len(d.qps))
	for _, q := range d.qps {
		qps = append(qps, q)
	}
	d.mu.Unlock()
	for _, q := range qps {
		q.mu.Lock()
		sends := q.sendq
		q.sendq = nil
		q.mu.Unlock()
		for i := range sends {
			if sends[i].Pooled != nil {
				sends[i].Pooled.Release()
			}
		}
	}
}

// CreateCQ makes a completion queue with the device default depth.
func (d *Device) CreateCQ() *CQ { return NewCQ(d.cfg.CQDepth) }

// CreateQP creates a queue pair of the given transport bound to the two
// completion queues (which may be the same). UD QPs are immediately ready;
// RC/UC QPs must be connected.
func (d *Device) CreateQP(t Transport, sendCQ, recvCQ *CQ) (*QP, error) {
	if sendCQ == nil || recvCQ == nil {
		return nil, fmt.Errorf("rnic: CreateQP requires completion queues")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	select {
	case <-d.closed:
		return nil, ErrDeviceClosed
	default:
	}
	q := &QP{
		dev:       d,
		qpn:       d.nextQPN,
		transport: t,
		sendCQ:    sendCQ,
		recvCQ:    recvCQ,
	}
	if t == UD {
		q.state = qpReady
	}
	d.nextQPN++
	d.qps[q.qpn] = q
	return q, nil
}

// DestroyQP removes the QP with the given number from the device's table,
// flushing any queued work requests as error completions first. Recovery
// layers that recycle broken QPs use it so repeatedly flapping connections
// do not accumulate dead queue pairs.
func (d *Device) DestroyQP(qpn int) {
	d.mu.Lock()
	q := d.qps[qpn]
	delete(d.qps, qpn)
	d.mu.Unlock()
	if q != nil {
		q.enterError()
	}
}

// QPByNumber returns the local QP with the given number, or nil.
func (d *Device) QPByNumber(qpn int) *QP {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.qps[qpn]
}

// NumQPs reports how many QPs exist on the device.
func (d *Device) NumQPs() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.qps)
}

// RegisterMR registers a fresh buffer of size bytes with the given remote
// permissions and returns the region.
func (d *Device) RegisterMR(size int, perms Perm) (*MemRegion, error) {
	if size <= 0 {
		return nil, fmt.Errorf("rnic: RegisterMR size %d", size)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	select {
	case <-d.closed:
		return nil, ErrDeviceClosed
	default:
	}
	mr := &MemRegion{
		buf:   make([]byte, size),
		lkey:  d.nextKey,
		rkey:  d.nextKey,
		perms: perms,
		node:  int(d.cfg.Node),
	}
	d.nextKey++
	d.mrs[mr.rkey] = mr
	return mr, nil
}

// lookupMR resolves an rkey to a region, nil if unknown. Each call models
// one MTT/MPT translation on the responder NIC.
func (d *Device) lookupMR(rkey uint32) *MemRegion {
	d.counters.add(&d.counters.MRLookups, 1)
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.mrs[rkey]
}

// ConnectPair creates one RC (or UC) QP on each of a and b, connects them
// to each other, and returns them. Each QP gets its own send CQ and recv
// CQ created with the device defaults. It is the in-process stand-in for
// out-of-band connection exchange.
func ConnectPair(a, b *Device, t Transport) (*QP, *QP, error) {
	if t == UD {
		return nil, nil, ErrWrongTranport
	}
	qa, err := a.CreateQP(t, a.CreateCQ(), a.CreateCQ())
	if err != nil {
		return nil, nil, err
	}
	qb, err := b.CreateQP(t, b.CreateCQ(), b.CreateCQ())
	if err != nil {
		return nil, nil, err
	}
	if err := qa.Connect(int(b.Node()), qb.QPN()); err != nil {
		return nil, nil, err
	}
	if err := qb.Connect(int(a.Node()), qa.QPN()); err != nil {
		return nil, nil, err
	}
	return qa, qb, nil
}

// ring notifies the pipeline that q has pending work.
func (d *Device) ring(q *QP) error {
	atomic.AddInt64(&d.inflight, 1)
	select {
	case d.work <- q:
		return nil
	case <-d.closed:
		atomic.AddInt64(&d.inflight, -1)
		return ErrDeviceClosed
	}
}

// Quiesce returns once every posted WR has been executed. It is a test and
// benchmark aid; applications rely on completions instead.
func (d *Device) Quiesce() {
	for atomic.LoadInt64(&d.inflight) != 0 {
		select {
		case <-d.closed:
			return
		default:
		}
	}
}

// pipeline is the device's processing unit: it drains QP send queues in
// doorbell order.
func (d *Device) pipeline() {
	defer d.wg.Done()
	for {
		select {
		case q := <-d.work:
			d.drain(q)
			atomic.AddInt64(&d.inflight, -1)
		case <-d.closed:
			return
		}
	}
}

// drainBudget bounds how many WRs the pipeline executes from one QP before
// arbitrating to the next pending QP, as NIC hardware round-robins WQE
// processing across queue pairs. Without it one deep send queue could
// starve every other connection.
const drainBudget = 16

// drain executes q's queued WRs until its send queue is observed empty or
// the fairness budget is spent; in the latter case the QP is re-queued
// behind the other pending doorbells.
func (d *Device) drain(q *QP) {
	spent := 0
	for {
		q.mu.Lock()
		if len(q.sendq) == 0 {
			q.ringing = false
			q.mu.Unlock()
			return
		}
		n := len(q.sendq)
		if spent+n > drainBudget {
			n = drainBudget - spent
		}
		batch := d.drainScratch[:n]
		copy(batch, q.sendq)
		rem := copy(q.sendq, q.sendq[n:])
		q.sendq = q.sendq[:rem]
		q.mu.Unlock()

		for i := range batch {
			d.execute(q, &batch[i])
			d.counters.add(&d.counters.Processed, 1)
			batch[i] = SendWR{} // drop payload references until the next round
		}
		spent += n
		if spent >= drainBudget {
			// Budget exhausted: hand the pipeline to the next QP if the
			// work channel has room, else keep going ourselves.
			atomic.AddInt64(&d.inflight, 1)
			select {
			case d.work <- q:
				return
			default:
				atomic.AddInt64(&d.inflight, -1)
				spent = 0
			}
		}
	}
}
