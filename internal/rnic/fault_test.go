package rnic

import (
	"testing"
	"time"

	"flock/internal/fabric"
)

// pollDeadline drains cq until a completion arrives or the deadline
// passes, yielding between polls.
func pollDeadline(t *testing.T, cq *CQ, d time.Duration) (Completion, bool) {
	t.Helper()
	var buf [1]Completion
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cq.Poll(buf[:]) == 1 {
			return buf[0], true
		}
		time.Sleep(10 * time.Microsecond)
	}
	return Completion{}, false
}

func TestRCRetransmitRecovers(t *testing.T) {
	// Moderate injected loss with a healthy retry budget: every WR still
	// completes OK, but the device records retransmissions.
	d1, d2 := testPair(t, fabric.Config{}, Config{RCRetries: 16}, Config{})
	d1.Fabric().SetFaultPlan(&fabric.FaultPlan{Seed: 42, RCLossProb: 0.3})
	qa, _, err := ConnectPair(d1, d2, RC)
	if err != nil {
		t.Fatal(err)
	}
	remote, _ := d2.RegisterMR(4096, PermRemoteWrite)
	for i := 0; i < 50; i++ {
		if err := qa.PostSend(SendWR{
			WRID: uint64(i), Op: OpWrite, Inline: []byte("x"),
			RKey: remote.RKey(), RemoteOff: i, Signaled: true,
		}); err != nil {
			t.Fatal(err)
		}
		c, ok := pollDeadline(t, qa.SendCQ(), 5*time.Second)
		if !ok || c.Status != StatusOK {
			t.Fatalf("wr %d: ok=%v comp=%+v", i, ok, c)
		}
	}
	if st := d1.Stats(); st.RCRetransmits == 0 {
		t.Fatal("0.3 loss over 50 WRs produced no retransmissions")
	} else if st.RCRetryExhausted != 0 {
		t.Fatalf("retry budget 16 exhausted %d times", st.RCRetryExhausted)
	}
}

func TestRCRetryExhaustionBreaksQPAndFlushes(t *testing.T) {
	// A down link exhausts the retry budget: the first WR completes with
	// StatusRetryExceeded, everything queued behind it flushes, and the QP
	// rejects further posts.
	d1, d2 := testPair(t, fabric.Config{}, Config{RCRetries: 3}, Config{})
	qa, _, err := ConnectPair(d1, d2, RC)
	if err != nil {
		t.Fatal(err)
	}
	remote, _ := d2.RegisterMR(4096, PermRemoteWrite)
	d1.Fabric().SetLinkDown(d1.Node(), d2.Node(), true)

	var wrs []SendWR
	for i := 0; i < 5; i++ {
		wrs = append(wrs, SendWR{
			WRID: uint64(i), Op: OpWrite, Inline: []byte("x"),
			RKey: remote.RKey(), RemoteOff: i, Signaled: true,
		})
	}
	if err := qa.PostSend(wrs...); err != nil {
		t.Fatal(err)
	}
	statuses := map[uint64]Status{}
	for len(statuses) < 5 {
		c, ok := pollDeadline(t, qa.SendCQ(), 5*time.Second)
		if !ok {
			t.Fatalf("only %d of 5 completions arrived", len(statuses))
		}
		statuses[c.WRID] = c.Status
	}
	if statuses[0] != StatusRetryExceeded {
		t.Fatalf("wr 0 status = %v, want retry-exceeded", statuses[0])
	}
	for i := uint64(1); i < 5; i++ {
		if statuses[i] != StatusWRFlush {
			t.Fatalf("wr %d status = %v, want wr-flush", i, statuses[i])
		}
	}
	if !qa.InError() {
		t.Fatal("QP not in error state after retry exhaustion")
	}
	if err := qa.PostSend(SendWR{Op: OpWrite, Inline: []byte("x"), RKey: remote.RKey()}); err != ErrQPErrorState {
		t.Fatalf("post on broken QP: %v", err)
	}
	st := d1.Stats()
	if st.RCRetryExhausted != 1 || st.WRFlushed < 4 {
		t.Fatalf("exhausted=%d flushed=%d", st.RCRetryExhausted, st.WRFlushed)
	}

	// The link coming back does not resurrect the QP — recovery is the
	// owner's business (QP recycle in internal/core).
	d1.Fabric().SetLinkDown(d1.Node(), d2.Node(), false)
	if !qa.InError() {
		t.Fatal("QP left error state on its own")
	}
}

func TestLinkFlapSchedule(t *testing.T) {
	// A scheduled flap: first DownAfter attempts pass, the next DownFor
	// attempts drop, then the link recovers.
	fab := fabric.New(fabric.Config{})
	fab.SetFaultPlan(&fabric.FaultPlan{
		Links: []fabric.LinkFault{{Src: 1, Dst: 2, DownAfter: 3, DownFor: 2}},
	})
	want := []bool{false, false, false, true, true, false, false}
	for i, w := range want {
		drop, _ := fab.FaultRC(1, 2, 0)
		if drop != w {
			t.Fatalf("attempt %d: drop=%v want %v", i, drop, w)
		}
	}
	// Wrong direction is unaffected.
	if drop, _ := fab.FaultRC(2, 1, 0); drop {
		t.Fatal("reverse link dropped")
	}
	if fs := fab.FaultCounters(); fs.LinkDownDrops != 2 {
		t.Fatalf("LinkDownDrops = %d", fs.LinkDownDrops)
	}
}

func TestDestroyQPFlushesQueued(t *testing.T) {
	d1, d2 := testPair(t, fabric.Config{}, Config{}, Config{})
	qa, _, err := ConnectPair(d1, d2, RC)
	if err != nil {
		t.Fatal(err)
	}
	if err := qa.PostRecv(RecvWR{WRID: 9}); err != nil {
		t.Fatal(err)
	}
	d1.DestroyQP(qa.QPN())
	if d1.QPByNumber(qa.QPN()) != nil {
		t.Fatal("destroyed QP still resolvable")
	}
	c, ok := pollDeadline(t, qa.RecvCQ(), time.Second)
	if !ok || c.Status != StatusWRFlush || c.WRID != 9 {
		t.Fatalf("recv flush: ok=%v comp=%+v", ok, c)
	}
}
