package rnic

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// MemRegion is a registered memory region (MR). Registration hands the
// buffer to the NIC for remote access: one-sided verbs address it by rkey
// and offset, subject to the region's permissions — the MPT/MTT role in
// Figure 1 of the paper.
//
// The owning host reads and writes the region through ReadAt/WriteAt and
// the 64-bit accessors. All access is mediated by an internal lock so that
// host polling and NIC DMA do not race; inbound RC writes larger than the
// fabric MTU are applied in ascending MTU-sized chunks with the lock
// released in between, so a polling host observes the same
// partially-placed messages it would see on real hardware. FLock's canary
// framing (§4.1) depends on exactly that.
type MemRegion struct {
	mu    sync.RWMutex
	buf   []byte
	lkey  uint32
	rkey  uint32
	perms Perm
	node  int
}

// Len returns the size of the region in bytes.
func (mr *MemRegion) Len() int { return len(mr.buf) }

// LKey returns the local key identifying this region in work requests.
func (mr *MemRegion) LKey() uint32 { return mr.lkey }

// RKey returns the remote key that peers use to address this region.
func (mr *MemRegion) RKey() uint32 { return mr.rkey }

// Perms returns the remote-access permissions.
func (mr *MemRegion) Perms() Perm { return mr.perms }

// checkRange validates [off, off+n) against the region bounds.
func (mr *MemRegion) checkRange(off, n int) error {
	if off < 0 || n < 0 || off+n > len(mr.buf) {
		return fmt.Errorf("rnic: range [%d,%d) outside region of %d bytes", off, off+n, len(mr.buf))
	}
	return nil
}

// ReadAt copies len(dst) bytes starting at off into dst.
func (mr *MemRegion) ReadAt(dst []byte, off int) error {
	if err := mr.checkRange(off, len(dst)); err != nil {
		return err
	}
	mr.mu.RLock()
	copy(dst, mr.buf[off:])
	mr.mu.RUnlock()
	return nil
}

// WriteAt copies src into the region starting at off.
func (mr *MemRegion) WriteAt(src []byte, off int) error {
	if err := mr.checkRange(off, len(src)); err != nil {
		return err
	}
	mr.mu.Lock()
	copy(mr.buf[off:], src)
	mr.mu.Unlock()
	return nil
}

// Load64 reads the little-endian 64-bit word at off. It is the host-side
// polling primitive: FLock receivers poll ring-buffer control words with
// it.
func (mr *MemRegion) Load64(off int) uint64 {
	mr.mu.RLock()
	v := binary.LittleEndian.Uint64(mr.buf[off : off+8])
	mr.mu.RUnlock()
	return v
}

// Store64 writes the little-endian 64-bit word v at off.
func (mr *MemRegion) Store64(off int, v uint64) {
	mr.mu.Lock()
	binary.LittleEndian.PutUint64(mr.buf[off:off+8], v)
	mr.mu.Unlock()
}

// dmaWriteChunked applies an inbound write in ascending MTU-sized chunks,
// releasing the lock between chunks (see type comment).
func (mr *MemRegion) dmaWriteChunked(src []byte, off, mtu int) {
	for len(src) > 0 {
		n := mtu
		if n > len(src) {
			n = len(src)
		}
		mr.mu.Lock()
		copy(mr.buf[off:], src[:n])
		mr.mu.Unlock()
		src = src[n:]
		off += n
	}
}

// dmaRead copies n bytes at off out of the region (requester-side read).
func (mr *MemRegion) dmaRead(dst []byte, off int) {
	mr.mu.RLock()
	copy(dst, mr.buf[off:off+len(dst)])
	mr.mu.RUnlock()
}

// CAS64 atomically replaces the 64-bit word at off with new when it holds
// old, returning whether the swap happened. It is the owning host's local
// atomic (a CPU CAS on registered memory); it serializes correctly with
// remote RDMA atomics because both go through the region lock.
func (mr *MemRegion) CAS64(off int, old, new uint64) bool {
	prev, err := mr.atomic64(off, func(v uint64) uint64 {
		if v == old {
			return new
		}
		return v
	})
	return err == nil && prev == old
}

// atomic64 runs fn on the 64-bit word at off under the region lock and
// returns the word's prior value. It implements fetch-and-add and
// compare-and-swap. off must be 8-byte aligned, as on real hardware.
func (mr *MemRegion) atomic64(off int, fn func(old uint64) (new uint64)) (uint64, error) {
	if off%8 != 0 {
		return 0, fmt.Errorf("rnic: atomic on unaligned offset %d", off)
	}
	if err := mr.checkRange(off, 8); err != nil {
		return 0, err
	}
	mr.mu.Lock()
	defer mr.mu.Unlock()
	old := binary.LittleEndian.Uint64(mr.buf[off : off+8])
	binary.LittleEndian.PutUint64(mr.buf[off:off+8], fn(old))
	return old, nil
}
