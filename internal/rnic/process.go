package rnic

import (
	"runtime"
	"time"

	"flock/internal/fabric"
	"flock/internal/mem"
)

// execute runs one work request on the device pipeline. It models the
// requester NIC touching its own connection context, the wire transfer,
// and the responder NIC touching its context and performing DMA against
// the target memory region.
func (d *Device) execute(q *QP, wr *SendWR) {
	// Every path through execute is terminal for the WR, so the pooled
	// Inline lease (if the poster transferred one) dies here.
	if wr.Pooled != nil {
		defer func() {
			wr.Pooled.Release()
			wr.Pooled = nil
		}()
	}
	// A QP that entered the error state while this WR sat in the pipeline
	// flushes it unexecuted, exactly as enterError does for still-queued
	// WRs.
	if q.transport != UD && q.InError() {
		d.counters.add(&d.counters.WRFlushed, 1)
		d.complete(q, wr, StatusWRFlush, 0)
		return
	}

	// Requester-side connection-context access (UD uses one context for
	// all peers — that is precisely its scalability advantage, §2.2).
	d.cacheAccess(int(d.cfg.Node), q.qpn)

	var dstNode, dstQPN int
	if q.transport == UD {
		dstNode, dstQPN = wr.Dst.Node, wr.Dst.QPN
	} else {
		dstNode, dstQPN = q.Peer()
	}

	payload, pbuf := d.gatherPayload(q, wr)
	if pbuf != nil {
		defer pbuf.Release()
	}

	// Wire accounting. Reads move the payload in the response direction;
	// everything else in the request direction. Atomics move 8 bytes each
	// way; we charge the request direction.
	txBytes := len(payload)
	switch wr.Op {
	case OpRead:
		txBytes = 0 // request is header-only; response accounted below
	case OpFetchAdd, OpCmpSwap:
		txBytes = 8
	}
	pkts := d.fab.ChargeTX(d.cfg.Node, fabric.NodeID(dstNode), txBytes)
	d.counters.add(&d.counters.PacketsTX, uint64(pkts))
	d.counters.add(&d.counters.BytesTX, uint64(txBytes))

	// UD wire loss: the sender still sees a successful completion — UD
	// has no acknowledgements (Table 1).
	if q.transport == UD {
		if d.fab.DropUD(d.cfg.Node, fabric.NodeID(dstNode)) {
			d.counters.add(&d.counters.UDDropsWire, 1)
			d.complete(q, wr, StatusOK, len(payload))
			return
		}
		// UD has no end-to-end integrity check: injected corruption is
		// delivered.
		if mangled, ok := d.fab.MangleUD(d.cfg.Node, fabric.NodeID(dstNode), payload); ok {
			d.counters.add(&d.counters.UDCorrupted, 1)
			payload = mangled
		}
	}

	// RC reliability: retransmit faulted attempts with exponential backoff
	// until the retry budget runs out, then complete in error and break the
	// QP, flushing everything behind this WR.
	if q.transport == RC {
		if !d.transmitRC(q, fabric.NodeID(dstNode), txBytes) {
			d.counters.add(&d.counters.RCRetryExhausted, 1)
			d.complete(q, wr, StatusRetryExceeded, 0)
			q.enterError()
			return
		}
	}

	peer, ok := d.fab.Lookup(fabric.NodeID(dstNode)).(*Device)
	if peer == nil || !ok {
		d.complete(q, wr, StatusRemoteAccess, 0)
		if q.transport != UD {
			q.enterError()
		}
		return
	}

	// Responder-side connection-context access: the server NIC in a high
	// fan-in pattern caches one context per client QP, which is what
	// thrashes in Figure 2a.
	peer.cacheAccess(int(d.cfg.Node), dstQPN)

	status := StatusOK
	byteLen := len(payload)
	switch wr.Op {
	case OpWrite, OpWriteImm:
		status = d.execWrite(peer, dstQPN, wr, payload)
	case OpRead:
		status, byteLen = d.execRead(peer, wr)
	case OpSend:
		status = d.execSend(q, peer, dstQPN, wr, payload)
	case OpFetchAdd, OpCmpSwap:
		status = d.execAtomic(peer, wr)
	}

	if status != StatusOK && q.transport != UD {
		// Fatal completions move connected QPs to the error state, like
		// hardware; queued WRs behind the failure flush.
		defer q.enterError()
	}
	d.complete(q, wr, status, byteLen)
}

// transmitRC models the requester side of RC reliability: each wire
// attempt may be faulted by the fabric (random loss, detected corruption,
// a link-down window); lost attempts are retransmitted with exponential
// backoff up to Config.RCRetries. Retransmissions re-charge the wire. It
// returns false when the retry budget is exhausted or the device closes.
func (d *Device) transmitRC(q *QP, dst fabric.NodeID, txBytes int) bool {
	for attempt := 0; ; attempt++ {
		drop, delay := d.fab.FaultRC(d.cfg.Node, dst, q.qpn)
		if delay > 0 {
			time.Sleep(delay)
		}
		if !drop {
			return true
		}
		if attempt >= d.cfg.RCRetries {
			return false
		}
		d.counters.add(&d.counters.RCRetransmits, 1)
		pkts := d.fab.ChargeTX(d.cfg.Node, dst, txBytes)
		d.counters.add(&d.counters.PacketsTX, uint64(pkts))
		d.counters.add(&d.counters.BytesTX, uint64(txBytes))
		if attempt < 2 {
			runtime.Gosched()
		} else {
			back := time.Microsecond << uint(attempt)
			if back > 64*time.Microsecond {
				back = 64 * time.Microsecond
			}
			time.Sleep(back)
		}
		select {
		case <-d.closed:
			return false
		default:
		}
	}
}

// pcieFetchNs is the modeled cost of one connection-context fetch over
// PCIe after a cache miss — roughly the round-trip of a 256B DMA read on
// a Gen3 x16 link, matching the stall the paper attributes to context
// thrashing (§2.3).
const pcieFetchNs = 600

// cacheAccess touches the device's connection cache and updates counters.
// It returns true on a hit.
func (d *Device) cacheAccess(node, qpn int) bool {
	hit := d.cache.access(node, qpn)
	if hit {
		d.counters.add(&d.counters.CacheHits, 1)
	} else {
		d.counters.add(&d.counters.CacheMisses, 1)
		d.counters.add(&d.counters.PCIeFetchNanos, pcieFetchNs)
	}
	return hit
}

// gatherPayload materializes the outbound bytes of wr (nil for reads and
// atomics' request side). When the bytes are gathered out of a local MR
// the staging space comes from the buffer pool; the returned *mem.Buf is
// non-nil in that case and the caller releases it after fabric delivery.
func (d *Device) gatherPayload(q *QP, wr *SendWR) ([]byte, *mem.Buf) {
	switch wr.Op {
	case OpSend, OpWrite, OpWriteImm:
		if wr.Inline != nil {
			return wr.Inline, nil
		}
		if wr.LocalMR != nil {
			b := mem.Get(wr.LocalLen)
			wr.LocalMR.dmaRead(b.Data(), wr.LocalOff)
			return b.Data(), b
		}
	}
	return nil, nil
}

// execWrite places payload into the responder's region. Write-with-imm
// additionally consumes a receive WQE on the destination QP and delivers a
// receive completion carrying the immediate.
func (d *Device) execWrite(peer *Device, dstQPN int, wr *SendWR, payload []byte) Status {
	mr := peer.lookupMR(wr.RKey)
	if mr == nil || mr.perms&PermRemoteWrite == 0 {
		return StatusRemoteAccess
	}
	if err := mr.checkRange(wr.RemoteOff, len(payload)); err != nil {
		return StatusRemoteAccess
	}
	mr.dmaWriteChunked(payload, wr.RemoteOff, d.fab.MTU())

	if wr.Op == OpWriteImm {
		dq := peer.QPByNumber(dstQPN)
		if dq == nil {
			return StatusRemoteAccess
		}
		rwr, ok := d.waitRecv(dq)
		if !ok {
			return StatusRNRExceeded
		}
		peer.counters.add(&peer.counters.CompletionsDelivered, 1)
		dq.recvCQ.push(Completion{
			WRID:     rwr.WRID,
			Status:   StatusOK,
			Opcode:   OpRecv,
			ByteLen:  len(payload),
			Imm:      wr.Imm,
			ImmValid: true,
			QPN:      dq.qpn,
			SrcNode:  int(d.cfg.Node),
			SrcQPN:   wr.sourceQPN(),
		})
	}
	return StatusOK
}

// execRead copies from the responder's region into the requester's local
// region.
func (d *Device) execRead(peer *Device, wr *SendWR) (Status, int) {
	mr := peer.lookupMR(wr.RKey)
	if mr == nil || mr.perms&PermRemoteRead == 0 {
		return StatusRemoteAccess, 0
	}
	if err := mr.checkRange(wr.RemoteOff, wr.LocalLen); err != nil {
		return StatusRemoteAccess, 0
	}
	b := mem.Get(wr.LocalLen)
	mr.dmaRead(b.Data(), wr.RemoteOff)
	wr.LocalMR.dmaWriteChunked(b.Data(), wr.LocalOff, d.fab.MTU())
	b.Release()

	// Response-direction wire accounting.
	pkts := d.fab.ChargeTX(peer.cfg.Node, d.cfg.Node, wr.LocalLen)
	peer.counters.add(&peer.counters.PacketsTX, uint64(pkts))
	peer.counters.add(&peer.counters.BytesTX, uint64(wr.LocalLen))
	return StatusOK, wr.LocalLen
}

// execSend delivers a two-sided send into a posted receive buffer on the
// destination QP.
func (d *Device) execSend(q *QP, peer *Device, dstQPN int, wr *SendWR, payload []byte) Status {
	dq := peer.QPByNumber(dstQPN)
	if dq == nil {
		if q.transport == UD {
			peer.counters.add(&peer.counters.UDDropsNoRecv, 1)
			return StatusOK // fire and forget
		}
		return StatusRemoteAccess
	}
	var rwr RecvWR
	var ok bool
	if q.transport == UD {
		// No RNR on datagrams: absent a buffer the packet is dropped.
		rwr, ok = dq.popRecv()
		if !ok {
			peer.counters.add(&peer.counters.UDDropsNoRecv, 1)
			return StatusOK
		}
	} else {
		rwr, ok = d.waitRecv(dq)
		if !ok {
			return StatusRNRExceeded
		}
	}
	if len(payload) > rwr.Len {
		if q.transport == UD {
			peer.counters.add(&peer.counters.UDDropsNoRecv, 1)
			return StatusOK
		}
		// RC: the responder completes the receive in error; requester too.
		dq.recvCQ.push(Completion{
			WRID: rwr.WRID, Status: StatusLenError, Opcode: OpRecv, QPN: dq.qpn,
		})
		peer.counters.add(&peer.counters.CompletionsDelivered, 1)
		return StatusLenError
	}
	if rwr.MR != nil {
		if err := rwr.MR.WriteAt(payload, rwr.Off); err != nil {
			return StatusRemoteAccess
		}
	}
	peer.counters.add(&peer.counters.CompletionsDelivered, 1)
	dq.recvCQ.push(Completion{
		WRID:     rwr.WRID,
		Status:   StatusOK,
		Opcode:   OpRecv,
		ByteLen:  len(payload),
		Imm:      wr.Imm,
		ImmValid: wr.ImmValid,
		QPN:      dq.qpn,
		SrcNode:  int(d.cfg.Node),
		SrcQPN:   q.qpn,
	})
	return StatusOK
}

// execAtomic runs a 64-bit atomic on the responder's region and stores the
// prior value into the requester's local region.
func (d *Device) execAtomic(peer *Device, wr *SendWR) Status {
	mr := peer.lookupMR(wr.RKey)
	if mr == nil || mr.perms&PermRemoteAtomic == 0 {
		return StatusRemoteAccess
	}
	var old uint64
	var err error
	switch wr.Op {
	case OpFetchAdd:
		old, err = mr.atomic64(wr.RemoteOff, func(v uint64) uint64 { return v + wr.CompareAdd })
	case OpCmpSwap:
		old, err = mr.atomic64(wr.RemoteOff, func(v uint64) uint64 {
			if v == wr.CompareAdd {
				return wr.Swap
			}
			return v
		})
	}
	if err != nil {
		return StatusRemoteAccess
	}
	d.counters.add(&d.counters.AtomicOps, 1)
	var out [8]byte
	putLE64(out[:], old)
	if err := wr.LocalMR.WriteAt(out[:], wr.LocalOff); err != nil {
		return StatusRemoteAccess
	}
	return StatusOK
}

// waitRecv pops a receive buffer from dq, retrying while the responder is
// not ready (RC receiver-not-ready flow control). Each retry yields the
// processor; the stall is real head-of-line blocking for the pipeline,
// as on hardware.
func (d *Device) waitRecv(dq *QP) (RecvWR, bool) {
	for attempt := 0; attempt < d.cfg.RNRRetries; attempt++ {
		if rwr, ok := dq.popRecv(); ok {
			return rwr, true
		}
		d.counters.add(&d.counters.RNRWaits, 1)
		if attempt < 64 {
			runtime.Gosched()
		} else {
			time.Sleep(10 * time.Microsecond)
		}
		select {
		case <-d.closed:
			return RecvWR{}, false
		default:
		}
	}
	return RecvWR{}, false
}

// complete delivers (or suppresses) the requester-side completion for wr.
func (d *Device) complete(q *QP, wr *SendWR, status Status, byteLen int) {
	if status == StatusOK && !wr.Signaled {
		d.counters.add(&d.counters.CompletionsSuppressed, 1)
		return
	}
	d.counters.add(&d.counters.CompletionsDelivered, 1)
	q.sendCQ.push(Completion{
		WRID:    wr.WRID,
		Status:  status,
		Opcode:  wr.Op,
		ByteLen: byteLen,
		QPN:     q.qpn,
	})
}

// sourceQPN lets write-imm receivers learn the sender QP; connected
// transports know it implicitly, so 0 suffices here (the receive path
// fills SrcQPN from the executing QP for sends).
func (wr *SendWR) sourceQPN() int { return 0 }

// putLE64 writes v little-endian into b[:8].
func putLE64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}
