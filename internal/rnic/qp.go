package rnic

import (
	"errors"
	"fmt"
	"sync"

	"flock/internal/mem"
)

// Address identifies a remote queue pair for UD sends (the address-handle
// role of the verbs API).
type Address struct {
	Node int
	QPN  int
}

// SendWR is a send-queue work request. The payload source is either Inline
// (the bytes are captured at post time) or a registered local region
// (LocalMR/LocalOff/LocalLen). One-sided verbs additionally name the
// remote region by RKey/RemoteOff. For atomics, the 8-byte result lands at
// LocalMR/LocalOff.
type SendWR struct {
	WRID uint64
	Op   Opcode

	// Payload source.
	Inline   []byte
	LocalMR  *MemRegion
	LocalOff int
	LocalLen int

	// One-sided target.
	RKey      uint32
	RemoteOff int

	// Immediate for OpSend/OpWriteImm.
	Imm      uint32
	ImmValid bool

	// Atomics: OpFetchAdd adds CompareAdd; OpCmpSwap swaps in Swap when
	// the current value equals CompareAdd.
	CompareAdd uint64
	Swap       uint64

	// Signaled requests a completion entry on success. Errors always
	// complete. Selective signaling (§7 of the paper) posts runs of
	// unsignaled WRs ended by a signaled one, cutting completion DMAs.
	Signaled bool

	// Dst addresses the destination for UD sends; ignored on connected
	// transports.
	Dst Address

	// Pooled transfers ownership of the Inline buffer's pool lease to the
	// device: PostSend is asynchronous, so a caller staging Inline bytes in
	// a pooled buffer cannot release it when PostSend returns — the
	// pipeline reads Inline later. The device releases the lease when the
	// WR reaches a terminal state (executed, flushed on QP error, or
	// abandoned at Close). If PostSend returns an error, nothing was
	// enqueued and the lease stays with the caller.
	Pooled *mem.Buf
}

// RecvWR is a receive-queue work request: a buffer the NIC may place one
// inbound send into.
type RecvWR struct {
	WRID uint64
	MR   *MemRegion
	Off  int
	Len  int
}

// qpState tracks the queue pair lifecycle.
type qpState int

const (
	qpReset qpState = iota
	qpReady
	qpError
)

// Errors returned by posting.
var (
	ErrQPNotReady    = errors.New("rnic: queue pair not connected/ready")
	ErrQPErrorState  = errors.New("rnic: queue pair in error state")
	ErrUnsupported   = errors.New("rnic: opcode not supported by transport")
	ErrMTUExceeded   = errors.New("rnic: UD payload exceeds MTU")
	ErrBadWR         = errors.New("rnic: malformed work request")
	ErrDeviceClosed  = errors.New("rnic: device closed")
	ErrNoSuchNode    = errors.New("rnic: destination node not on fabric")
	ErrAlreadyBound  = errors.New("rnic: queue pair already connected")
	ErrWrongTranport = errors.New("rnic: operation invalid for transport")
)

// QP is a queue pair: a send queue and a receive queue bound to a send and
// a receive completion queue. Connected transports (RC/UC) are bound
// one-to-one to a remote QP with Connect; UD QPs address each send
// individually.
//
// Like hardware QPs, a QP imposes no internal concurrency control beyond
// what is needed for memory safety: concurrent PostSend calls are legal
// but their relative order is unspecified. FLock's whole point (§4.2) is
// that the *application* should serialize posting through a combining
// leader rather than a lock.
type QP struct {
	dev       *Device
	qpn       int
	transport Transport

	mu       sync.Mutex
	state    qpState
	peerNode int
	peerQPN  int
	sendq    []SendWR
	recvq    []RecvWR
	ringing  bool // a doorbell for this QP is in flight

	sendCQ *CQ
	recvCQ *CQ
}

// QPN returns the queue pair number, unique per device.
func (q *QP) QPN() int { return q.qpn }

// Transport returns the queue pair's transport type.
func (q *QP) Transport() Transport { return q.transport }

// SendCQ returns the completion queue for send-side completions.
func (q *QP) SendCQ() *CQ { return q.sendCQ }

// RecvCQ returns the completion queue for receive-side completions.
func (q *QP) RecvCQ() *CQ { return q.recvCQ }

// Connect binds a connected (RC/UC) queue pair to its peer. The peer QP
// must be connected back before traffic flows; Device.ConnectPair does
// both ends at once for in-process setups.
func (q *QP) Connect(peerNode, peerQPN int) error {
	if q.transport == UD {
		return ErrWrongTranport
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.state == qpReady {
		return ErrAlreadyBound
	}
	if q.state == qpError {
		return ErrQPErrorState
	}
	q.peerNode = peerNode
	q.peerQPN = peerQPN
	q.state = qpReady
	return nil
}

// Peer returns the connected peer's (node, qpn); meaningful only for
// RC/UC queue pairs in the ready state.
func (q *QP) Peer() (node, qpn int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.peerNode, q.peerQPN
}

// validate checks a work request against transport capabilities and shape.
func (q *QP) validate(wr *SendWR) error {
	if !q.transport.Supports(wr.Op) {
		return fmt.Errorf("%w: %s on %s", ErrUnsupported, wr.Op, q.transport)
	}
	switch wr.Op {
	case OpSend, OpWrite, OpWriteImm:
		if wr.Inline != nil && wr.LocalMR != nil {
			return fmt.Errorf("%w: both inline and MR payload", ErrBadWR)
		}
		if wr.Inline == nil && wr.LocalMR == nil && q.payloadLen(wr) != 0 {
			return fmt.Errorf("%w: no payload source", ErrBadWR)
		}
		if wr.LocalMR != nil {
			if err := wr.LocalMR.checkRange(wr.LocalOff, wr.LocalLen); err != nil {
				return err
			}
		}
		if q.transport == UD && q.payloadLen(wr) > q.dev.fab.MTU() {
			return ErrMTUExceeded
		}
	case OpRead:
		if wr.LocalMR == nil {
			return fmt.Errorf("%w: read needs a local destination MR", ErrBadWR)
		}
		if err := wr.LocalMR.checkRange(wr.LocalOff, wr.LocalLen); err != nil {
			return err
		}
	case OpFetchAdd, OpCmpSwap:
		if wr.LocalMR == nil {
			return fmt.Errorf("%w: atomic needs a local result MR", ErrBadWR)
		}
		if err := wr.LocalMR.checkRange(wr.LocalOff, 8); err != nil {
			return err
		}
	default:
		return fmt.Errorf("%w: cannot post %s", ErrBadWR, wr.Op)
	}
	return nil
}

// payloadLen computes the outbound payload size of wr.
func (q *QP) payloadLen(wr *SendWR) int {
	if wr.Inline != nil {
		return len(wr.Inline)
	}
	if wr.LocalMR != nil {
		return wr.LocalLen
	}
	return 0
}

// PostSend posts one or more work requests to the send queue and rings the
// doorbell once. The single doorbell per call is the MMIO economy FLock's
// leader exploits by linking followers' work requests into one post (§6):
// Device.Counters.Doorbells counts calls, not WRs.
func (q *QP) PostSend(wrs ...SendWR) error {
	if len(wrs) == 0 {
		return nil
	}
	for i := range wrs {
		if err := q.validate(&wrs[i]); err != nil {
			return err
		}
	}
	q.mu.Lock()
	switch q.state {
	case qpError:
		q.mu.Unlock()
		return ErrQPErrorState
	case qpReset:
		if q.transport != UD { // UD QPs are ready at creation
			q.mu.Unlock()
			return ErrQPNotReady
		}
	}
	q.sendq = append(q.sendq, wrs...)
	ring := !q.ringing
	if ring {
		q.ringing = true
	}
	q.mu.Unlock()

	q.dev.counters.add(&q.dev.counters.Doorbells, 1)
	q.dev.counters.add(&q.dev.counters.WorkRequests, uint64(len(wrs)))
	if ring {
		return q.dev.ring(q)
	}
	return nil
}

// PostRecv posts receive buffers. Each inbound send (or write-imm event)
// consumes one in FIFO order.
func (q *QP) PostRecv(wrs ...RecvWR) error {
	for i := range wrs {
		wr := &wrs[i]
		if wr.MR == nil {
			if wr.Len != 0 {
				return fmt.Errorf("%w: recv buffer without MR", ErrBadWR)
			}
		} else if err := wr.MR.checkRange(wr.Off, wr.Len); err != nil {
			return err
		}
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.state == qpError {
		return ErrQPErrorState
	}
	q.recvq = append(q.recvq, wrs...)
	return nil
}

// RecvDepth reports the number of posted, unconsumed receive buffers.
func (q *QP) RecvDepth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.recvq)
}

// popRecv consumes the oldest receive buffer, if any.
func (q *QP) popRecv() (RecvWR, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.recvq) == 0 {
		return RecvWR{}, false
	}
	wr := q.recvq[0]
	n := copy(q.recvq, q.recvq[1:])
	q.recvq = q.recvq[:n]
	return wr, true
}

// enterError moves the QP to the error state and flushes every queued work
// request — send and receive — as a StatusWRFlush error completion, the
// way hardware retires outstanding WQEs of a broken QP (IBTA WR_FLUSH_ERR).
// Owners of in-flight requests observe the flushes on the CQs and can
// recover; subsequent posts fail with ErrQPErrorState.
func (q *QP) enterError() {
	q.mu.Lock()
	q.state = qpError
	sends := q.sendq
	recvs := q.recvq
	q.sendq = nil
	q.recvq = nil
	q.mu.Unlock()
	for i := range sends {
		if sends[i].Pooled != nil {
			sends[i].Pooled.Release()
			sends[i].Pooled = nil
		}
		q.dev.counters.add(&q.dev.counters.WRFlushed, 1)
		q.dev.counters.add(&q.dev.counters.CompletionsDelivered, 1)
		q.sendCQ.push(Completion{
			WRID: sends[i].WRID, Status: StatusWRFlush, Opcode: sends[i].Op, QPN: q.qpn,
		})
	}
	for i := range recvs {
		q.dev.counters.add(&q.dev.counters.WRFlushed, 1)
		q.dev.counters.add(&q.dev.counters.CompletionsDelivered, 1)
		q.recvCQ.push(Completion{
			WRID: recvs[i].WRID, Status: StatusWRFlush, Opcode: OpRecv, QPN: q.qpn,
		})
	}
}

// InError reports whether the QP is in the error state.
func (q *QP) InError() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.state == qpError
}
