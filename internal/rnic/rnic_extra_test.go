package rnic

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"flock/internal/fabric"
)

// Additional substrate coverage: UC semantics, CQ sharing, pipeline
// fairness, and concurrent atomic correctness.

func TestUCWriteAndSend(t *testing.T) {
	d1, d2 := testPair(t, fabric.Config{}, Config{}, Config{})
	qa, qb, err := ConnectPair(d1, d2, UC)
	if err != nil {
		t.Fatal(err)
	}
	remote, _ := d2.RegisterMR(1024, PermRemoteWrite)

	// One-sided write works on UC.
	if err := qa.PostSend(SendWR{WRID: 1, Op: OpWrite, Inline: []byte("uc-write"), RKey: remote.RKey(), Signaled: true}); err != nil {
		t.Fatal(err)
	}
	if c := pollOne(t, qa.SendCQ()); c.Status != StatusOK {
		t.Fatalf("uc write: %+v", c)
	}
	got := make([]byte, 8)
	remote.ReadAt(got, 0)
	if string(got) != "uc-write" {
		t.Fatalf("remote = %q", got)
	}

	// Send/recv works on UC.
	rbuf, _ := d2.RegisterMR(64, 0)
	qb.PostRecv(RecvWR{WRID: 2, MR: rbuf, Off: 0, Len: 64})
	if err := qa.PostSend(SendWR{WRID: 3, Op: OpSend, Inline: []byte("uc-send"), Signaled: true}); err != nil {
		t.Fatal(err)
	}
	rc := pollOne(t, qb.RecvCQ())
	if rc.ByteLen != 7 {
		t.Fatalf("uc recv: %+v", rc)
	}
}

func TestSharedCQAcrossQPs(t *testing.T) {
	// Several QPs feeding one CQ — the QP scheduler's shared RCQ pattern.
	d1, d2 := testPair(t, fabric.Config{}, Config{}, Config{})
	shared := d2.CreateCQ()
	var clientQPs []*QP
	for i := 0; i < 4; i++ {
		qa, err := d1.CreateQP(RC, d1.CreateCQ(), d1.CreateCQ())
		if err != nil {
			t.Fatal(err)
		}
		qb, err := d2.CreateQP(RC, d2.CreateCQ(), shared)
		if err != nil {
			t.Fatal(err)
		}
		if err := qa.Connect(int(d2.Node()), qb.QPN()); err != nil {
			t.Fatal(err)
		}
		if err := qb.Connect(int(d1.Node()), qa.QPN()); err != nil {
			t.Fatal(err)
		}
		qb.PostRecv(RecvWR{WRID: uint64(100 + i)})
		clientQPs = append(clientQPs, qa)
	}
	ring, _ := d2.RegisterMR(4096, PermRemoteWrite)
	for i, qa := range clientQPs {
		if err := qa.PostSend(SendWR{
			Op: OpWriteImm, RKey: ring.RKey(), Imm: uint32(i), ImmValid: true,
		}); err != nil {
			t.Fatal(err)
		}
	}
	// All four immediates land on the one shared CQ, each naming its QP.
	// Drain against a time deadline, yielding between polls: an
	// iteration-count spin can burn its whole budget before the device
	// pipeline goroutine is ever scheduled on a small GOMAXPROCS.
	seen := map[int]bool{}
	var buf [8]Completion
	deadline := time.Now().Add(5 * time.Second)
	for len(seen) < 4 && time.Now().Before(deadline) {
		n := shared.Poll(buf[:])
		for _, c := range buf[:n] {
			if !c.ImmValid {
				t.Fatalf("missing imm: %+v", c)
			}
			seen[c.QPN] = true
		}
		if n == 0 {
			runtime.Gosched()
		}
	}
	if len(seen) != 4 {
		t.Fatalf("saw %d distinct QPNs on shared CQ", len(seen))
	}
}

func TestDrainFairnessAcrossQPs(t *testing.T) {
	// One QP with a deep backlog must not starve another QP's single
	// write for more than the drain budget.
	d1, d2 := testPair(t, fabric.Config{}, Config{}, Config{})
	busy, _, err := ConnectPair(d1, d2, RC)
	if err != nil {
		t.Fatal(err)
	}
	quick, _, err := ConnectPair(d1, d2, RC)
	if err != nil {
		t.Fatal(err)
	}
	remote, _ := d2.RegisterMR(8192, PermRemoteWrite)

	// Backlog 20× the drain budget on the busy QP, then a single marker
	// write on the quick QP.
	var wrs []SendWR
	for i := 0; i < drainBudget*20; i++ {
		wrs = append(wrs, SendWR{Op: OpWrite, Inline: []byte{1}, RKey: remote.RKey(), RemoteOff: i % 4096})
	}
	if err := busy.PostSend(wrs...); err != nil {
		t.Fatal(err)
	}
	if err := quick.PostSend(SendWR{WRID: 7, Op: OpWrite, Inline: []byte{9}, RKey: remote.RKey(), RemoteOff: 8000, Signaled: true}); err != nil {
		t.Fatal(err)
	}
	// The quick QP's completion must arrive even while the busy backlog
	// is still draining (fairness), which pollOne's deadline verifies.
	if c := pollOne(t, quick.SendCQ()); c.WRID != 7 || c.Status != StatusOK {
		t.Fatalf("quick write: %+v", c)
	}
	d1.Quiesce()
	var got [1]byte
	remote.ReadAt(got[:], 8000)
	if got[0] != 9 {
		t.Fatal("quick write lost")
	}
}

func TestConcurrentRemoteAtomics(t *testing.T) {
	// Many client devices FAA-ing one server word must sum exactly —
	// atomicity across NICs, not just within one.
	fab := fabric.New(fabric.Config{})
	server, err := NewDevice(fab, Config{Node: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	word, _ := server.RegisterMR(64, PermRemoteAtomic)

	const nClients, perClient = 4, 300
	var wg sync.WaitGroup
	for c := 0; c < nClients; c++ {
		dev, err := NewDevice(fab, Config{Node: fabric.NodeID(c + 1)})
		if err != nil {
			t.Fatal(err)
		}
		defer dev.Close()
		qa, _, err := ConnectPair(dev, server, RC)
		if err != nil {
			t.Fatal(err)
		}
		local, _ := dev.RegisterMR(64, 0)
		wg.Add(1)
		go func(qa *QP, local *MemRegion) {
			defer wg.Done()
			var buf [1]Completion
			for i := 0; i < perClient; i++ {
				qa.PostSend(SendWR{ //nolint:errcheck
					Op: OpFetchAdd, LocalMR: local, RKey: word.RKey(),
					RemoteOff: 0, CompareAdd: 1, Signaled: true,
				})
				for qa.SendCQ().Poll(buf[:]) == 0 {
					runtime.Gosched()
				}
			}
		}(qa, local)
	}
	wg.Wait()
	if got := word.Load64(0); got != nClients*perClient {
		t.Fatalf("counter = %d, want %d", got, nClients*perClient)
	}
}

func TestPostRecvValidation(t *testing.T) {
	d1, _ := testPair(t, fabric.Config{}, Config{}, Config{})
	q, _ := d1.CreateQP(UD, d1.CreateCQ(), d1.CreateCQ())
	mr, _ := d1.RegisterMR(64, 0)
	// Recv buffer overrunning its MR is rejected at post time.
	if err := q.PostRecv(RecvWR{WRID: 1, MR: mr, Off: 60, Len: 8}); err == nil {
		t.Fatal("overrunning recv buffer accepted")
	}
	// MR-less recv with a length is rejected.
	if err := q.PostRecv(RecvWR{WRID: 2, Len: 8}); err == nil {
		t.Fatal("recv with length but no MR accepted")
	}
	// MR-less zero-length recv (write-imm consumer) is fine.
	if err := q.PostRecv(RecvWR{WRID: 3}); err != nil {
		t.Fatal(err)
	}
	if q.RecvDepth() != 1 {
		t.Fatalf("recv depth = %d", q.RecvDepth())
	}
}

func TestCountersSnapshot(t *testing.T) {
	d1, d2 := testPair(t, fabric.Config{}, Config{}, Config{})
	qa, _, _ := ConnectPair(d1, d2, RC)
	remote, _ := d2.RegisterMR(1024, PermRemoteWrite)
	for i := 0; i < 10; i++ {
		qa.PostSend(SendWR{Op: OpWrite, Inline: []byte{1}, RKey: remote.RKey()}) //nolint:errcheck
	}
	d1.Quiesce()
	st := d1.Stats()
	if st.WorkRequests != 10 || st.Processed != 10 {
		t.Fatalf("wrs=%d processed=%d", st.WorkRequests, st.Processed)
	}
	if st.PacketsTX < 10 || st.BytesTX < 10 {
		t.Fatalf("pkts=%d bytes=%d", st.PacketsTX, st.BytesTX)
	}
}
