package rnic

import (
	"bytes"
	"testing"
	"time"

	"flock/internal/fabric"
)

// testPair builds a fabric with two devices and returns them plus a
// cleanup-registered closer.
func testPair(t *testing.T, fcfg fabric.Config, c1, c2 Config) (*Device, *Device) {
	t.Helper()
	fab := fabric.New(fcfg)
	c1.Node, c2.Node = 1, 2
	d1, err := NewDevice(fab, c1)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := NewDevice(fab, c2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d1.Close(); d2.Close() })
	return d1, d2
}

// pollOne spins until one completion arrives on cq or the deadline passes.
func pollOne(t *testing.T, cq *CQ) Completion {
	t.Helper()
	var buf [1]Completion
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cq.Poll(buf[:]) == 1 {
			return buf[0]
		}
	}
	t.Fatal("timed out waiting for completion")
	return Completion{}
}

func TestTransportCapabilityMatrix(t *testing.T) {
	// Table 1 of the paper.
	cases := []struct {
		tr   Transport
		op   Opcode
		want bool
	}{
		{RC, OpRead, true}, {RC, OpWrite, true}, {RC, OpWriteImm, true},
		{RC, OpSend, true}, {RC, OpFetchAdd, true}, {RC, OpCmpSwap, true},
		{UC, OpRead, false}, {UC, OpWrite, true}, {UC, OpWriteImm, true},
		{UC, OpSend, true}, {UC, OpFetchAdd, false}, {UC, OpCmpSwap, false},
		{UD, OpRead, false}, {UD, OpWrite, false}, {UD, OpWriteImm, false},
		{UD, OpSend, true}, {UD, OpFetchAdd, false}, {UD, OpCmpSwap, false},
	}
	for _, c := range cases {
		if got := c.tr.Supports(c.op); got != c.want {
			t.Errorf("%s supports %s = %v, want %v", c.tr, c.op, got, c.want)
		}
	}
}

func TestRCWriteReadRoundTrip(t *testing.T) {
	d1, d2 := testPair(t, fabric.Config{}, Config{}, Config{})
	qa, _, err := ConnectPair(d1, d2, RC)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := d2.RegisterMR(4096, PermRemoteRead|PermRemoteWrite)
	if err != nil {
		t.Fatal(err)
	}
	local, err := d1.RegisterMR(4096, 0)
	if err != nil {
		t.Fatal(err)
	}

	msg := []byte("hello, flock")
	if err := qa.PostSend(SendWR{
		WRID: 1, Op: OpWrite, Inline: msg, RKey: remote.RKey(), RemoteOff: 100, Signaled: true,
	}); err != nil {
		t.Fatal(err)
	}
	c := pollOne(t, qa.SendCQ())
	if c.Status != StatusOK || c.WRID != 1 {
		t.Fatalf("write completion: %+v", c)
	}
	got := make([]byte, len(msg))
	remote.ReadAt(got, 100)
	if !bytes.Equal(got, msg) {
		t.Fatalf("remote memory = %q", got)
	}

	// Read it back one-sided.
	if err := qa.PostSend(SendWR{
		WRID: 2, Op: OpRead, LocalMR: local, LocalOff: 0, LocalLen: len(msg),
		RKey: remote.RKey(), RemoteOff: 100, Signaled: true,
	}); err != nil {
		t.Fatal(err)
	}
	c = pollOne(t, qa.SendCQ())
	if c.Status != StatusOK || c.ByteLen != len(msg) {
		t.Fatalf("read completion: %+v", c)
	}
	back := make([]byte, len(msg))
	local.ReadAt(back, 0)
	if !bytes.Equal(back, msg) {
		t.Fatalf("read-back = %q", back)
	}
}

func TestRCSendRecv(t *testing.T) {
	d1, d2 := testPair(t, fabric.Config{}, Config{}, Config{})
	qa, qb, err := ConnectPair(d1, d2, RC)
	if err != nil {
		t.Fatal(err)
	}
	rbuf, _ := d2.RegisterMR(1024, 0)
	if err := qb.PostRecv(RecvWR{WRID: 7, MR: rbuf, Off: 0, Len: 64}); err != nil {
		t.Fatal(err)
	}
	if err := qa.PostSend(SendWR{WRID: 9, Op: OpSend, Inline: []byte("ping"), Signaled: true, Imm: 42, ImmValid: true}); err != nil {
		t.Fatal(err)
	}
	rc := pollOne(t, qb.RecvCQ())
	if rc.WRID != 7 || rc.Status != StatusOK || rc.ByteLen != 4 || !rc.ImmValid || rc.Imm != 42 {
		t.Fatalf("recv completion: %+v", rc)
	}
	if rc.SrcNode != 1 || rc.SrcQPN != qa.QPN() {
		t.Fatalf("recv source: %+v", rc)
	}
	got := make([]byte, 4)
	rbuf.ReadAt(got, 0)
	if string(got) != "ping" {
		t.Fatalf("recv buffer = %q", got)
	}
	sc := pollOne(t, qa.SendCQ())
	if sc.WRID != 9 || sc.Status != StatusOK {
		t.Fatalf("send completion: %+v", sc)
	}
}

func TestRCWriteWithImm(t *testing.T) {
	d1, d2 := testPair(t, fabric.Config{}, Config{}, Config{})
	qa, qb, err := ConnectPair(d1, d2, RC)
	if err != nil {
		t.Fatal(err)
	}
	remote, _ := d2.RegisterMR(1024, PermRemoteWrite)
	if err := qb.PostRecv(RecvWR{WRID: 5}); err != nil {
		t.Fatal(err)
	}
	if err := qa.PostSend(SendWR{
		WRID: 1, Op: OpWriteImm, Inline: []byte{1, 2, 3}, RKey: remote.RKey(),
		RemoteOff: 0, Imm: 0xbeef, Signaled: true,
	}); err != nil {
		t.Fatal(err)
	}
	rc := pollOne(t, qb.RecvCQ())
	if rc.WRID != 5 || !rc.ImmValid || rc.Imm != 0xbeef || rc.ByteLen != 3 {
		t.Fatalf("write-imm recv completion: %+v", rc)
	}
	b := make([]byte, 3)
	remote.ReadAt(b, 0)
	if !bytes.Equal(b, []byte{1, 2, 3}) {
		t.Fatalf("data not placed: %v", b)
	}
}

func TestAtomics(t *testing.T) {
	d1, d2 := testPair(t, fabric.Config{}, Config{}, Config{})
	qa, _, err := ConnectPair(d1, d2, RC)
	if err != nil {
		t.Fatal(err)
	}
	remote, _ := d2.RegisterMR(64, PermRemoteAtomic|PermRemoteRead)
	local, _ := d1.RegisterMR(64, 0)
	remote.Store64(8, 100)

	// Fetch-and-add.
	if err := qa.PostSend(SendWR{
		WRID: 1, Op: OpFetchAdd, LocalMR: local, LocalOff: 0,
		RKey: remote.RKey(), RemoteOff: 8, CompareAdd: 5, Signaled: true,
	}); err != nil {
		t.Fatal(err)
	}
	if c := pollOne(t, qa.SendCQ()); c.Status != StatusOK {
		t.Fatalf("faa completion: %+v", c)
	}
	if old := local.Load64(0); old != 100 {
		t.Fatalf("faa returned %d, want 100", old)
	}
	if now := remote.Load64(8); now != 105 {
		t.Fatalf("remote word = %d, want 105", now)
	}

	// Successful CAS.
	if err := qa.PostSend(SendWR{
		WRID: 2, Op: OpCmpSwap, LocalMR: local, LocalOff: 8,
		RKey: remote.RKey(), RemoteOff: 8, CompareAdd: 105, Swap: 7, Signaled: true,
	}); err != nil {
		t.Fatal(err)
	}
	if c := pollOne(t, qa.SendCQ()); c.Status != StatusOK {
		t.Fatalf("cas completion: %+v", c)
	}
	if old := local.Load64(8); old != 105 {
		t.Fatalf("cas returned %d, want 105", old)
	}
	if now := remote.Load64(8); now != 7 {
		t.Fatalf("remote word = %d, want 7", now)
	}

	// Failed CAS leaves memory unchanged, returns current value.
	if err := qa.PostSend(SendWR{
		WRID: 3, Op: OpCmpSwap, LocalMR: local, LocalOff: 16,
		RKey: remote.RKey(), RemoteOff: 8, CompareAdd: 9999, Swap: 1, Signaled: true,
	}); err != nil {
		t.Fatal(err)
	}
	pollOne(t, qa.SendCQ())
	if old := local.Load64(16); old != 7 {
		t.Fatalf("failed cas returned %d, want 7", old)
	}
	if now := remote.Load64(8); now != 7 {
		t.Fatalf("failed cas modified memory: %d", now)
	}
}

func TestAtomicAlignment(t *testing.T) {
	d1, d2 := testPair(t, fabric.Config{}, Config{}, Config{})
	qa, _, _ := ConnectPair(d1, d2, RC)
	remote, _ := d2.RegisterMR(64, PermRemoteAtomic)
	local, _ := d1.RegisterMR(64, 0)
	if err := qa.PostSend(SendWR{
		WRID: 1, Op: OpFetchAdd, LocalMR: local, RKey: remote.RKey(),
		RemoteOff: 3, CompareAdd: 1, Signaled: true,
	}); err != nil {
		t.Fatal(err)
	}
	if c := pollOne(t, qa.SendCQ()); c.Status != StatusRemoteAccess {
		t.Fatalf("unaligned atomic completed with %v", c.Status)
	}
}

func TestCapabilityEnforcementAtPost(t *testing.T) {
	d1, d2 := testPair(t, fabric.Config{}, Config{}, Config{})
	// UD cannot read/write/atomics.
	ud, err := d1.CreateQP(UD, d1.CreateCQ(), d1.CreateCQ())
	if err != nil {
		t.Fatal(err)
	}
	local, _ := d1.RegisterMR(64, 0)
	for _, op := range []Opcode{OpRead, OpWrite, OpWriteImm, OpFetchAdd, OpCmpSwap} {
		err := ud.PostSend(SendWR{WRID: 1, Op: op, LocalMR: local, LocalLen: 8})
		if err == nil {
			t.Errorf("UD accepted %s", op)
		}
	}
	// UC cannot read or atomics.
	uc, _, err := ConnectPair(d1, d2, UC)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range []Opcode{OpRead, OpFetchAdd, OpCmpSwap} {
		err := uc.PostSend(SendWR{WRID: 1, Op: op, LocalMR: local, LocalLen: 8})
		if err == nil {
			t.Errorf("UC accepted %s", op)
		}
	}
}

func TestUDMTUEnforcement(t *testing.T) {
	d1, _ := testPair(t, fabric.Config{MTU: 4096}, Config{}, Config{})
	ud, _ := d1.CreateQP(UD, d1.CreateCQ(), d1.CreateCQ())
	big := make([]byte, 4097)
	err := ud.PostSend(SendWR{WRID: 1, Op: OpSend, Inline: big, Dst: Address{Node: 2}})
	if err == nil {
		t.Fatal("UD accepted payload above MTU")
	}
	ok := make([]byte, 4096)
	if err := ud.PostSend(SendWR{WRID: 2, Op: OpSend, Inline: ok, Dst: Address{Node: 2}}); err != nil {
		t.Fatalf("UD rejected MTU-sized payload: %v", err)
	}
}

func TestUDSendRecvAndDrops(t *testing.T) {
	d1, d2 := testPair(t, fabric.Config{}, Config{}, Config{})
	uda, _ := d1.CreateQP(UD, d1.CreateCQ(), d1.CreateCQ())
	udb, _ := d2.CreateQP(UD, d2.CreateCQ(), d2.CreateCQ())
	rbuf, _ := d2.RegisterMR(4096, 0)

	// No recv posted: packet silently dropped, sender still completes.
	if err := uda.PostSend(SendWR{
		WRID: 1, Op: OpSend, Inline: []byte("lost"), Signaled: true,
		Dst: Address{Node: 2, QPN: udb.QPN()},
	}); err != nil {
		t.Fatal(err)
	}
	if c := pollOne(t, uda.SendCQ()); c.Status != StatusOK {
		t.Fatalf("UD send without recv buffer errored: %+v", c)
	}
	d1.Quiesce()
	if got := d2.Stats().UDDropsNoRecv; got != 1 {
		t.Fatalf("UDDropsNoRecv = %d", got)
	}

	// With a recv buffer, delivery works and identifies the source.
	udb.PostRecv(RecvWR{WRID: 2, MR: rbuf, Off: 0, Len: 128})
	uda.PostSend(SendWR{
		WRID: 3, Op: OpSend, Inline: []byte("found"), Signaled: true,
		Dst: Address{Node: 2, QPN: udb.QPN()},
	})
	rc := pollOne(t, udb.RecvCQ())
	if rc.SrcNode != 1 || rc.SrcQPN != uda.QPN() || rc.ByteLen != 5 {
		t.Fatalf("UD recv completion: %+v", rc)
	}
}

func TestUDWireLoss(t *testing.T) {
	d1, d2 := testPair(t, fabric.Config{UDLossProb: 1.0, Seed: 1}, Config{}, Config{})
	uda, _ := d1.CreateQP(UD, d1.CreateCQ(), d1.CreateCQ())
	udb, _ := d2.CreateQP(UD, d2.CreateCQ(), d2.CreateCQ())
	rbuf, _ := d2.RegisterMR(4096, 0)
	udb.PostRecv(RecvWR{WRID: 1, MR: rbuf, Off: 0, Len: 128})
	uda.PostSend(SendWR{
		WRID: 2, Op: OpSend, Inline: []byte("x"), Signaled: true,
		Dst: Address{Node: 2, QPN: udb.QPN()},
	})
	// Sender completes OK even though the wire ate the packet.
	if c := pollOne(t, uda.SendCQ()); c.Status != StatusOK {
		t.Fatalf("sender saw loss: %+v", c)
	}
	d1.Quiesce()
	if udb.RecvCQ().Len() != 0 {
		t.Fatal("lost packet was delivered")
	}
	if d1.Stats().UDDropsWire != 1 {
		t.Fatalf("UDDropsWire = %d", d1.Stats().UDDropsWire)
	}
}

func TestRCRNRRetrySucceeds(t *testing.T) {
	d1, d2 := testPair(t, fabric.Config{}, Config{}, Config{})
	qa, qb, _ := ConnectPair(d1, d2, RC)
	rbuf, _ := d2.RegisterMR(1024, 0)

	// Post the send first; the responder has no buffer yet.
	if err := qa.PostSend(SendWR{WRID: 1, Op: OpSend, Inline: []byte("wait"), Signaled: true}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(time.Millisecond)
	if err := qb.PostRecv(RecvWR{WRID: 2, MR: rbuf, Off: 0, Len: 64}); err != nil {
		t.Fatal(err)
	}
	if c := pollOne(t, qa.SendCQ()); c.Status != StatusOK {
		t.Fatalf("send did not recover from RNR: %+v", c)
	}
	if d1.Stats().RNRWaits == 0 {
		t.Fatal("expected RNR waits to be recorded")
	}
}

func TestRCRNRExhaustionErrorsQP(t *testing.T) {
	d1, d2 := testPair(t, fabric.Config{}, Config{RNRRetries: 3}, Config{})
	qa, _, _ := ConnectPair(d1, d2, RC)
	if err := qa.PostSend(SendWR{WRID: 1, Op: OpSend, Inline: []byte("x"), Signaled: true}); err != nil {
		t.Fatal(err)
	}
	c := pollOne(t, qa.SendCQ())
	if c.Status != StatusRNRExceeded {
		t.Fatalf("status = %v", c.Status)
	}
	if !qa.InError() {
		t.Fatal("QP should be in error state after RNR exhaustion")
	}
	if err := qa.PostSend(SendWR{WRID: 2, Op: OpSend, Inline: []byte("y")}); err == nil {
		t.Fatal("post on errored QP succeeded")
	}
}

func TestRemoteAccessViolations(t *testing.T) {
	d1, d2 := testPair(t, fabric.Config{}, Config{}, Config{})
	qa, _, _ := ConnectPair(d1, d2, RC)
	roRegion, _ := d2.RegisterMR(64, PermRemoteRead) // no write perm
	local, _ := d1.RegisterMR(64, 0)

	// Write without permission.
	qa1, _, _ := ConnectPair(d1, d2, RC)
	if err := qa1.PostSend(SendWR{WRID: 1, Op: OpWrite, Inline: []byte("x"), RKey: roRegion.RKey(), Signaled: true}); err != nil {
		t.Fatal(err)
	}
	if c := pollOne(t, qa1.SendCQ()); c.Status != StatusRemoteAccess {
		t.Fatalf("unauthorized write: %+v", c)
	}

	// Bad rkey.
	qa2, _, _ := ConnectPair(d1, d2, RC)
	if err := qa2.PostSend(SendWR{WRID: 2, Op: OpRead, LocalMR: local, LocalLen: 8, RKey: 9999, Signaled: true}); err != nil {
		t.Fatal(err)
	}
	if c := pollOne(t, qa2.SendCQ()); c.Status != StatusRemoteAccess {
		t.Fatalf("bad rkey: %+v", c)
	}

	// Out-of-bounds write.
	if err := qa.PostSend(SendWR{WRID: 3, Op: OpWrite, Inline: make([]byte, 65), RKey: roRegion.RKey(), Signaled: true}); err != nil {
		t.Fatal(err)
	}
	if c := pollOne(t, qa.SendCQ()); c.Status != StatusRemoteAccess {
		t.Fatalf("oob write: %+v", c)
	}
}

func TestSelectiveSignaling(t *testing.T) {
	d1, d2 := testPair(t, fabric.Config{}, Config{}, Config{})
	qa, _, _ := ConnectPair(d1, d2, RC)
	remote, _ := d2.RegisterMR(4096, PermRemoteWrite)

	// Post 8 writes, only the last signaled (§7: N-1 unsignaled of N).
	var wrs []SendWR
	for i := 0; i < 8; i++ {
		wrs = append(wrs, SendWR{
			WRID: uint64(i), Op: OpWrite, Inline: []byte{byte(i)},
			RKey: remote.RKey(), RemoteOff: i, Signaled: i == 7,
		})
	}
	if err := qa.PostSend(wrs...); err != nil {
		t.Fatal(err)
	}
	c := pollOne(t, qa.SendCQ())
	if c.WRID != 7 {
		t.Fatalf("signaled completion WRID = %d", c.WRID)
	}
	if qa.SendCQ().Len() != 0 {
		t.Fatal("unsignaled WRs generated completions")
	}
	st := d1.Stats()
	if st.CompletionsSuppressed != 7 {
		t.Fatalf("suppressed = %d, want 7", st.CompletionsSuppressed)
	}
	// All 8 writes landed despite suppression.
	b := make([]byte, 8)
	remote.ReadAt(b, 0)
	for i := 0; i < 8; i++ {
		if b[i] != byte(i) {
			t.Fatalf("write %d missing: %v", i, b)
		}
	}
}

func TestDoorbellAccounting(t *testing.T) {
	d1, d2 := testPair(t, fabric.Config{}, Config{}, Config{})
	qa, _, _ := ConnectPair(d1, d2, RC)
	remote, _ := d2.RegisterMR(4096, PermRemoteWrite)

	// One PostSend with 4 linked WRs = 1 doorbell, 4 work requests.
	var wrs []SendWR
	for i := 0; i < 4; i++ {
		wrs = append(wrs, SendWR{WRID: uint64(i), Op: OpWrite, Inline: []byte{1}, RKey: remote.RKey(), RemoteOff: i})
	}
	if err := qa.PostSend(wrs...); err != nil {
		t.Fatal(err)
	}
	d1.Quiesce()
	st := d1.Stats()
	if st.Doorbells != 1 {
		t.Fatalf("doorbells = %d, want 1", st.Doorbells)
	}
	if st.WorkRequests != 4 {
		t.Fatalf("work requests = %d, want 4", st.WorkRequests)
	}

	// Four separate PostSends = 4 more doorbells.
	for i := 0; i < 4; i++ {
		qa.PostSend(SendWR{WRID: uint64(10 + i), Op: OpWrite, Inline: []byte{1}, RKey: remote.RKey()})
	}
	d1.Quiesce()
	if st := d1.Stats(); st.Doorbells < 2 || st.Doorbells > 5 {
		// Doorbell dedup may merge posts that land while draining, like
		// hardware; at least one extra doorbell must have been rung.
		t.Fatalf("doorbells = %d", st.Doorbells)
	}
}

func TestConnCacheLRU(t *testing.T) {
	c := newConnCache(2)
	if !c.access(1, 1) == false {
		// first access is a miss
	}
	if c.access(1, 1) != true {
		t.Fatal("second access should hit")
	}
	c.access(1, 2) // miss, cache now {1,2}
	c.access(1, 3) // miss, evicts 1
	if c.access(1, 1) {
		t.Fatal("evicted entry hit")
	}
	// 3 was most recent before 1's reinsertion; 2 was evicted.
	if c.access(1, 3) != true {
		t.Fatal("resident entry missed")
	}
	hits, misses, evictions := c.stats()
	if hits != 2 || misses != 4 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
	if evictions != 2 { // 1 evicted by 3's insert, then 2 evicted by 1's reinsert
		t.Fatalf("evictions=%d", evictions)
	}
	if c.len() != 2 {
		t.Fatalf("len = %d", c.len())
	}
}

func TestConnCacheUnlimited(t *testing.T) {
	c := newConnCache(0)
	for i := 0; i < 10000; i++ {
		if !c.access(1, i) {
			t.Fatal("unlimited cache missed")
		}
	}
}

func TestNICCacheThrashing(t *testing.T) {
	// Reproduce the Figure 2a mechanism: a server NIC with a small
	// connection cache thrashes once the client QP count exceeds it.
	fab := fabric.New(fabric.Config{})
	server, err := NewDevice(fab, Config{Node: 0, CacheSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	client, err := NewDevice(fab, Config{Node: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	remote, _ := server.RegisterMR(4096, PermRemoteRead)
	local, _ := client.RegisterMR(4096, 0)

	run := func(qps int) float64 {
		var conns []*QP
		for i := 0; i < qps; i++ {
			qa, _, err := ConnectPair(client, server, RC)
			if err != nil {
				t.Fatal(err)
			}
			conns = append(conns, qa)
		}
		h0, m0, _ := server.CacheStats()
		// Synchronous rounds model clients with one outstanding request
		// each: the server context access pattern cycles over all QPs.
		for round := 0; round < 50; round++ {
			for _, q := range conns {
				q.PostSend(SendWR{Op: OpRead, LocalMR: local, LocalLen: 16, RKey: remote.RKey()})
			}
			client.Quiesce()
		}
		h1, m1, _ := server.CacheStats()
		total := float64(h1 - h0 + m1 - m0)
		return float64(m1-m0) / total
	}

	missFew := run(8)   // fits in cache
	missMany := run(64) // 4x over capacity
	if missFew > 0.25 {
		t.Errorf("small QP count miss rate %.2f, want low", missFew)
	}
	if missMany < 0.75 {
		t.Errorf("thrashing QP count miss rate %.2f, want high", missMany)
	}
}

func TestChunkedWriteOrdering(t *testing.T) {
	// A write larger than the MTU becomes visible in ascending address
	// order: if the last byte is visible, every earlier byte is too.
	d1, d2 := testPair(t, fabric.Config{MTU: 64}, Config{}, Config{})
	qa, _, _ := ConnectPair(d1, d2, RC)
	const size = 1024
	remote, _ := d2.RegisterMR(size, PermRemoteWrite)

	payload := make([]byte, size)
	for i := range payload {
		payload[i] = 0xAB
	}
	done := make(chan struct{})
	violations := 0
	go func() {
		defer close(done)
		buf := make([]byte, size)
		for {
			remote.ReadAt(buf, 0)
			if buf[size-1] == 0xAB {
				for i := 0; i < size; i++ {
					if buf[i] != 0xAB {
						violations++
					}
				}
				return
			}
		}
	}()
	qa.PostSend(SendWR{Op: OpWrite, Inline: payload, RKey: remote.RKey()})
	<-done
	if violations != 0 {
		t.Fatalf("%d bytes visible out of order", violations)
	}
}

func TestPerQPOrdering(t *testing.T) {
	// WRs posted on one RC QP execute in order: increasing writes to the
	// same location leave the last value.
	d1, d2 := testPair(t, fabric.Config{}, Config{}, Config{})
	qa, _, _ := ConnectPair(d1, d2, RC)
	remote, _ := d2.RegisterMR(8, PermRemoteWrite)
	for i := uint64(1); i <= 500; i++ {
		var b [8]byte
		putLE64(b[:], i)
		if err := qa.PostSend(SendWR{Op: OpWrite, Inline: b[:], RKey: remote.RKey()}); err != nil {
			t.Fatal(err)
		}
	}
	d1.Quiesce()
	if got := remote.Load64(0); got != 500 {
		t.Fatalf("final value %d, want 500 (ordering violated)", got)
	}
}

func TestCQOverflow(t *testing.T) {
	cq := NewCQ(2)
	for i := 0; i < 5; i++ {
		cq.push(Completion{WRID: uint64(i)})
	}
	if cq.Len() != 2 {
		t.Fatalf("len = %d", cq.Len())
	}
	if cq.Overflows() != 3 {
		t.Fatalf("overflows = %d", cq.Overflows())
	}
	var buf [4]Completion
	n := cq.Poll(buf[:])
	if n != 2 || buf[0].WRID != 0 || buf[1].WRID != 1 {
		t.Fatalf("poll returned %d: %+v", n, buf[:n])
	}
}

func TestCQPollPartial(t *testing.T) {
	cq := NewCQ(10)
	for i := 0; i < 5; i++ {
		cq.push(Completion{WRID: uint64(i)})
	}
	var one [1]Completion
	for want := uint64(0); want < 5; want++ {
		if cq.Poll(one[:]) != 1 || one[0].WRID != want {
			t.Fatalf("FIFO violated at %d", want)
		}
	}
	if cq.Poll(one[:]) != 0 {
		t.Fatal("empty CQ returned a completion")
	}
	if cq.Poll(nil) != 0 {
		t.Fatal("nil dst should poll zero")
	}
}

func TestMemRegionBounds(t *testing.T) {
	d1, _ := testPair(t, fabric.Config{}, Config{}, Config{})
	mr, _ := d1.RegisterMR(16, 0)
	if err := mr.ReadAt(make([]byte, 17), 0); err == nil {
		t.Fatal("oversized read allowed")
	}
	if err := mr.WriteAt(make([]byte, 8), 9); err == nil {
		t.Fatal("overflowing write allowed")
	}
	if err := mr.WriteAt(make([]byte, 1), -1); err == nil {
		t.Fatal("negative offset allowed")
	}
	if err := mr.WriteAt(make([]byte, 16), 0); err != nil {
		t.Fatalf("exact-fit write rejected: %v", err)
	}
}

func TestRegisterMRInvalidSize(t *testing.T) {
	d1, _ := testPair(t, fabric.Config{}, Config{}, Config{})
	if _, err := d1.RegisterMR(0, 0); err == nil {
		t.Fatal("zero-size MR allowed")
	}
	if _, err := d1.RegisterMR(-5, 0); err == nil {
		t.Fatal("negative-size MR allowed")
	}
}

func TestQPConnectErrors(t *testing.T) {
	d1, d2 := testPair(t, fabric.Config{}, Config{}, Config{})
	q, err := d1.CreateQP(RC, d1.CreateCQ(), d1.CreateCQ())
	if err != nil {
		t.Fatal(err)
	}
	// Post before connect.
	if err := q.PostSend(SendWR{Op: OpWrite, Inline: []byte("x")}); err != ErrQPNotReady {
		t.Fatalf("post before connect: %v", err)
	}
	if err := q.Connect(int(d2.Node()), 1); err != nil {
		t.Fatal(err)
	}
	// Double connect.
	if err := q.Connect(int(d2.Node()), 1); err != ErrAlreadyBound {
		t.Fatalf("double connect: %v", err)
	}
	// UD QPs cannot Connect.
	ud, _ := d1.CreateQP(UD, d1.CreateCQ(), d1.CreateCQ())
	if err := ud.Connect(2, 1); err != ErrWrongTranport {
		t.Fatalf("UD connect: %v", err)
	}
}

func TestDeviceCloseIdempotent(t *testing.T) {
	fab := fabric.New(fabric.Config{})
	d, err := NewDevice(fab, Config{Node: 9})
	if err != nil {
		t.Fatal(err)
	}
	d.Close()
	d.Close() // second close must not panic or hang
	if fab.Lookup(9) != nil {
		t.Fatal("device still on fabric after close")
	}
	if _, err := d.RegisterMR(64, 0); err != ErrDeviceClosed {
		t.Fatalf("RegisterMR after close: %v", err)
	}
	if _, err := d.CreateQP(RC, NewCQ(1), NewCQ(1)); err != ErrDeviceClosed {
		t.Fatalf("CreateQP after close: %v", err)
	}
}

func TestDuplicateNodeRejected(t *testing.T) {
	fab := fabric.New(fabric.Config{})
	d, _ := NewDevice(fab, Config{Node: 1})
	defer d.Close()
	if _, err := NewDevice(fab, Config{Node: 1}); err == nil {
		t.Fatal("duplicate node registration allowed")
	}
}

func TestSendToUnknownNode(t *testing.T) {
	fab := fabric.New(fabric.Config{})
	d, _ := NewDevice(fab, Config{Node: 1})
	defer d.Close()
	q, _ := d.CreateQP(RC, d.CreateCQ(), d.CreateCQ())
	q.Connect(77, 1) // no such node
	if err := q.PostSend(SendWR{WRID: 1, Op: OpWrite, Inline: []byte("x"), Signaled: true}); err != nil {
		t.Fatal(err)
	}
	if c := pollOne(t, q.SendCQ()); c.Status != StatusRemoteAccess {
		t.Fatalf("status = %v", c.Status)
	}
	if !q.InError() {
		t.Fatal("QP should error after unreachable peer")
	}
}
