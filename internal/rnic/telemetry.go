package rnic

import (
	"sync/atomic"

	"flock/internal/telemetry"
)

// PublishTelemetry registers snapshot-time views of the device's counters
// under prefix (e.g. "rnic."). The device's hot-path accounting is
// untouched — the pipeline keeps writing its own atomics and the registry
// reads them when a snapshot is taken.
func (d *Device) PublishTelemetry(reg *telemetry.Registry, prefix string) {
	cf := func(name string, f *uint64) {
		reg.CounterFunc(prefix+name, func() uint64 { return atomic.LoadUint64(f) })
	}
	c := &d.counters
	cf("doorbells", &c.Doorbells)
	cf("work_requests", &c.WorkRequests)
	cf("processed", &c.Processed)
	cf("cache_hits", &c.CacheHits)
	cf("cache_misses", &c.CacheMisses)
	cf("pcie_fetch_ns", &c.PCIeFetchNanos)
	cf("mr_lookups", &c.MRLookups)
	cf("completions_delivered", &c.CompletionsDelivered)
	cf("completions_suppressed", &c.CompletionsSuppressed)
	cf("packets_tx", &c.PacketsTX)
	cf("bytes_tx", &c.BytesTX)
	cf("ud_drops_no_recv", &c.UDDropsNoRecv)
	cf("ud_drops_wire", &c.UDDropsWire)
	cf("ud_corrupted", &c.UDCorrupted)
	cf("rnr_waits", &c.RNRWaits)
	cf("atomic_ops", &c.AtomicOps)
	cf("rc_retransmits", &c.RCRetransmits)
	cf("rc_retry_exhausted", &c.RCRetryExhausted)
	cf("wr_flushed", &c.WRFlushed)

	reg.CounterFunc(prefix+"cache_evictions", func() uint64 {
		_, _, ev := d.cache.stats()
		return ev
	})
	reg.GaugeFunc(prefix+"cache_resident", func() int64 {
		return int64(d.cache.len())
	})
	reg.GaugeFunc(prefix+"qps", func() int64 {
		return int64(d.NumQPs())
	})
}
