// Package rnic implements a software RDMA NIC: queue pairs, completion
// queues, registered memory regions, and the verbs of Table 1 of the FLock
// paper (send/recv, read, write, write-with-immediate, fetch-and-add,
// compare-and-swap) over the three transports RC, UC and UD.
//
// It substitutes for the Mellanox ConnectX-5 hardware of the paper's
// testbed. Two properties of the hardware that FLock's design depends on
// are modeled explicitly:
//
//   - The connection-context cache. A real RNIC caches QP state in on-chip
//     SRAM and fetches missing state over PCIe, which is the scalability
//     cliff of the paper's Figure 2. Device keeps an LRU cache of QP
//     contexts; every work request accounts a hit or a miss on both the
//     requester and the responder NIC. The functional tier surfaces the
//     miss counts; the DES tier (internal/model) converts them to time.
//
//   - Ordering. RC delivers work requests of one QP in order, and RDMA
//     writes become visible in ascending address order (FLock's canary
//     framing in §4.1 relies on this). The device applies RC writes in
//     ascending MTU-sized chunks, so a concurrent poller genuinely
//     observes partially-placed messages and the canary check is
//     load-bearing.
//
// Each Device runs a single pipeline goroutine that drains QP send queues
// in doorbell order, mirroring the serialized processing unit of a NIC.
package rnic

import "fmt"

// Transport enumerates the RDMA transport types (Table 1).
type Transport int

const (
	// RC is the reliable connection: all verbs, in-order, no loss.
	RC Transport = iota
	// UC is the unreliable connection: write and send/recv only.
	UC
	// UD is the unreliable datagram: send/recv only, 4 KB MTU,
	// may drop packets.
	UD
)

// String returns the conventional transport name.
func (t Transport) String() string {
	switch t {
	case RC:
		return "RC"
	case UC:
		return "UC"
	case UD:
		return "UD"
	default:
		return fmt.Sprintf("Transport(%d)", int(t))
	}
}

// Opcode enumerates verb operations.
type Opcode int

const (
	// OpSend is the two-sided send (consumes a receive WQE remotely).
	OpSend Opcode = iota
	// OpRecv marks receive completions.
	OpRecv
	// OpRead is the one-sided RDMA read.
	OpRead
	// OpWrite is the one-sided RDMA write.
	OpWrite
	// OpWriteImm is RDMA write-with-immediate: places data like OpWrite
	// and additionally consumes a receive WQE remotely, delivering the
	// 32-bit immediate in a receive completion. FLock's credit-renewal
	// path (§7) uses it so the QP scheduler can poll a receive CQ without
	// synchronizing with the request dispatchers.
	OpWriteImm
	// OpFetchAdd is the one-sided 64-bit atomic fetch-and-add.
	OpFetchAdd
	// OpCmpSwap is the one-sided 64-bit atomic compare-and-swap.
	OpCmpSwap
)

// String returns the verb name.
func (o Opcode) String() string {
	switch o {
	case OpSend:
		return "send"
	case OpRecv:
		return "recv"
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpWriteImm:
		return "write-imm"
	case OpFetchAdd:
		return "fetch-add"
	case OpCmpSwap:
		return "cmp-swap"
	default:
		return fmt.Sprintf("Opcode(%d)", int(o))
	}
}

// Supports reports whether transport t can carry opcode o — the capability
// matrix of Table 1. OpRecv is a completion-side opcode and is supported
// wherever sends are.
func (t Transport) Supports(o Opcode) bool {
	switch t {
	case RC:
		return true
	case UC:
		return o == OpSend || o == OpRecv || o == OpWrite || o == OpWriteImm
	case UD:
		return o == OpSend || o == OpRecv
	default:
		return false
	}
}

// Status is the completion status of a work request.
type Status int

const (
	// StatusOK indicates success.
	StatusOK Status = iota
	// StatusRemoteAccess indicates an rkey/bounds/permission violation at
	// the responder.
	StatusRemoteAccess
	// StatusRNRExceeded indicates the responder had no receive buffer and
	// retries were exhausted (receiver-not-ready).
	StatusRNRExceeded
	// StatusQPError indicates the QP was in the error state.
	StatusQPError
	// StatusLenError indicates a receive buffer was too small for the
	// incoming payload.
	StatusLenError
	// StatusRetryExceeded indicates the RC retransmission budget was
	// exhausted (transport retry counter, like IBTA retry_cnt): the fabric
	// faulted every attempt and the QP moved to the error state.
	StatusRetryExceeded
	// StatusWRFlush indicates the work request was flushed without
	// execution because its QP entered the error state (IBTA
	// WR_FLUSH_ERR). Outstanding WRs of a broken QP complete with this
	// status so their owners can recover.
	StatusWRFlush
)

// String returns a short status name.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusRemoteAccess:
		return "remote-access-error"
	case StatusRNRExceeded:
		return "rnr-exceeded"
	case StatusQPError:
		return "qp-error"
	case StatusLenError:
		return "len-error"
	case StatusRetryExceeded:
		return "retry-exceeded"
	case StatusWRFlush:
		return "wr-flush"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Perm is a bitmask of remote-access permissions for a memory region.
// Local read/write by the owning host is always allowed.
type Perm int

const (
	// PermRemoteRead allows one-sided reads.
	PermRemoteRead Perm = 1 << iota
	// PermRemoteWrite allows one-sided writes (and write-imm).
	PermRemoteWrite
	// PermRemoteAtomic allows fetch-and-add and compare-and-swap.
	PermRemoteAtomic
)

// Completion is a completion-queue entry.
type Completion struct {
	// WRID echoes the work request's identifier. FLock's memory-operation
	// layer (§6) demultiplexes completions of different threads sharing a
	// QP by WRID.
	WRID uint64
	// Status reports the outcome.
	Status Status
	// Opcode identifies the completed verb (OpRecv for inbound).
	Opcode Opcode
	// ByteLen is the payload length.
	ByteLen int
	// Imm carries the immediate value of a send/write-imm, valid when
	// ImmValid.
	Imm      uint32
	ImmValid bool
	// QPN is the local queue pair the completion belongs to.
	QPN int
	// SrcNode and SrcQPN identify the sender for UD receive completions.
	SrcNode int
	SrcQPN  int
}
