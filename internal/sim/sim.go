// Package sim is a deterministic discrete-event simulation engine with a
// virtual nanosecond clock. The benchmark models in internal/model use it
// to regenerate the paper's figures: every contention effect the paper
// measures (server CPU saturation, NIC pipeline thrashing, head-of-line
// blocking, queueing-driven tail latency) is reproduced by explicit
// resources with FCFS queues rather than by wall-clock measurement, so
// results are exact, fast, and independent of the build machine.
package sim

import "container/heap"

// Time is virtual nanoseconds since simulation start.
type Time uint64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * 1000
	Second      Time = 1000 * 1000 * 1000
)

// event is one scheduled callback.
type event struct {
	at  Time
	seq uint64 // tie-break: FIFO among equal timestamps
	fn  func()
}

// eventHeap orders events by (at, seq).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is the event loop. Not safe for concurrent use: models run on one
// goroutine (determinism is the point).
type Engine struct {
	heap eventHeap
	now  Time
	seq  uint64
	nRun uint64
}

// New returns an engine at time zero.
func New() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Processed reports how many events have run (a progress/cost metric).
func (e *Engine) Processed() uint64 { return e.nRun }

// At schedules fn at absolute time t (>= Now; earlier times run "now").
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.heap, event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn d nanoseconds from now.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// Step runs the next event; false when the queue is empty.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	ev := heap.Pop(&e.heap).(event)
	e.now = ev.at
	e.nRun++
	ev.fn()
	return true
}

// RunUntil processes events until the clock passes t or the queue drains.
func (e *Engine) RunUntil(t Time) {
	for len(e.heap) > 0 && e.heap[0].at <= t {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// Drain runs every remaining event.
func (e *Engine) Drain() {
	for e.Step() {
	}
}

// Resource is a k-unit FCFS service center: the model for server CPU
// cores, NIC processing units, and link serialization. Use acquires a
// unit for a duration and runs a completion callback; waiters queue in
// arrival order.
type Resource struct {
	eng   *Engine
	units int
	busy  int
	queue []pending

	// Accounting for utilization reports.
	busyTime Time
	served   uint64
}

type pending struct {
	dur  Time
	done func()
}

// NewResource creates a resource with the given unit count.
func NewResource(eng *Engine, units int) *Resource {
	if units < 1 {
		units = 1
	}
	return &Resource{eng: eng, units: units}
}

// Units returns the unit count.
func (r *Resource) Units() int { return r.units }

// QueueLen returns the number of waiting requests.
func (r *Resource) QueueLen() int { return len(r.queue) }

// Served returns how many requests completed service.
func (r *Resource) Served() uint64 { return r.served }

// BusyTime returns the cumulative busy unit-time (divide by units × span
// for utilization).
func (r *Resource) BusyTime() Time { return r.busyTime }

// Use requests dur of service; done runs at service completion. FCFS.
func (r *Resource) Use(dur Time, done func()) {
	if r.busy < r.units {
		r.start(dur, done)
		return
	}
	r.queue = append(r.queue, pending{dur: dur, done: done})
}

// start begins service immediately.
func (r *Resource) start(dur Time, done func()) {
	r.busy++
	r.busyTime += dur
	r.served++
	r.eng.After(dur, func() {
		r.busy--
		if len(r.queue) > 0 {
			p := r.queue[0]
			copy(r.queue, r.queue[1:])
			r.queue = r.queue[:len(r.queue)-1]
			r.start(p.dur, p.done)
		}
		if done != nil {
			done()
		}
	})
}
