package sim

import (
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	e := New()
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.Drain()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("now = %d", e.Now())
	}
}

func TestFIFOAmongEqualTimes(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Drain()
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-time events reordered: %v", order)
		}
	}
}

func TestAfterAndNesting(t *testing.T) {
	e := New()
	var fired []Time
	e.After(10, func() {
		fired = append(fired, e.Now())
		e.After(5, func() { fired = append(fired, e.Now()) })
	})
	e.Drain()
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 15 {
		t.Fatalf("fired = %v", fired)
	}
}

func TestPastSchedulingClamps(t *testing.T) {
	e := New()
	e.At(100, func() {
		e.At(50, func() { // in the past: runs "now"
			if e.Now() != 100 {
				t.Errorf("past event ran at %d", e.Now())
			}
		})
	})
	e.Drain()
}

func TestRunUntil(t *testing.T) {
	e := New()
	ran := 0
	for _, at := range []Time{10, 20, 30, 40} {
		e.At(at, func() { ran++ })
	}
	e.RunUntil(25)
	if ran != 2 {
		t.Fatalf("ran %d events by t=25", ran)
	}
	if e.Now() != 25 {
		t.Fatalf("now = %d", e.Now())
	}
	e.Drain()
	if ran != 4 {
		t.Fatalf("ran %d events total", ran)
	}
}

func TestResourceSerializes(t *testing.T) {
	e := New()
	r := NewResource(e, 1)
	var completions []Time
	for i := 0; i < 3; i++ {
		r.Use(10, func() { completions = append(completions, e.Now()) })
	}
	e.Drain()
	// FCFS on one unit: completions at 10, 20, 30.
	want := []Time{10, 20, 30}
	for i, w := range want {
		if completions[i] != w {
			t.Fatalf("completions = %v", completions)
		}
	}
	if r.Served() != 3 || r.BusyTime() != 30 {
		t.Fatalf("served=%d busy=%d", r.Served(), r.BusyTime())
	}
}

func TestResourceParallelUnits(t *testing.T) {
	e := New()
	r := NewResource(e, 2)
	var completions []Time
	for i := 0; i < 4; i++ {
		r.Use(10, func() { completions = append(completions, e.Now()) })
	}
	e.Drain()
	// Two units: (10,10), then (20,20).
	if completions[0] != 10 || completions[1] != 10 || completions[2] != 20 || completions[3] != 20 {
		t.Fatalf("completions = %v", completions)
	}
}

func TestResourceFCFS(t *testing.T) {
	e := New()
	r := NewResource(e, 1)
	var order []int
	// Long job first, then short ones; FCFS means no overtaking.
	r.Use(100, func() { order = append(order, 0) })
	r.Use(1, func() { order = append(order, 1) })
	r.Use(1, func() { order = append(order, 2) })
	e.Drain()
	if order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("order = %v", order)
	}
}

func TestResourceArrivalDuringService(t *testing.T) {
	e := New()
	r := NewResource(e, 1)
	var at []Time
	r.Use(10, func() { at = append(at, e.Now()) })
	e.At(5, func() {
		r.Use(10, func() { at = append(at, e.Now()) })
	})
	e.Drain()
	// Second arrives at 5, waits until 10, completes at 20.
	if at[0] != 10 || at[1] != 20 {
		t.Fatalf("completions = %v", at)
	}
}

func TestResourceUtilizationProperty(t *testing.T) {
	// Total busy time equals the sum of service durations regardless of
	// arrival pattern and unit count.
	f := func(units uint8, durs []uint16) bool {
		e := New()
		r := NewResource(e, int(units)%4+1)
		var want Time
		for i, d := range durs {
			if len(durs) > 50 && i >= 50 {
				break
			}
			dur := Time(d)%100 + 1
			want += dur
			e.At(Time(i), func() { r.Use(dur, nil) })
		}
		e.Drain()
		return r.BusyTime() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQueueLen(t *testing.T) {
	e := New()
	r := NewResource(e, 1)
	r.Use(100, nil)
	r.Use(100, nil)
	r.Use(100, nil)
	if r.QueueLen() != 2 {
		t.Fatalf("queue = %d", r.QueueLen())
	}
	e.Drain()
	if r.QueueLen() != 0 {
		t.Fatalf("queue = %d after drain", r.QueueLen())
	}
}

func TestMMQueueMatchesTheory(t *testing.T) {
	// Sanity: a D/D/1 queue at 50% utilization has no waiting; at 200%
	// it grows unboundedly. Check service counts over a window.
	e := New()
	r := NewResource(e, 1)
	// Arrivals every 20ns, service 10ns → all served promptly.
	n := 0
	var tick func()
	tick = func() {
		if e.Now() >= 10000 {
			return
		}
		r.Use(10, func() { n++ })
		e.After(20, tick)
	}
	e.At(0, tick)
	e.Drain()
	if n < 490 || n > 510 {
		t.Fatalf("served %d in 10µs at λ=50/µs", n)
	}
}

func BenchmarkEngine(b *testing.B) {
	e := New()
	var pump func()
	n := 0
	pump = func() {
		n++
		if n < b.N {
			e.After(10, pump)
		}
	}
	e.At(0, pump)
	b.ResetTimer()
	e.Drain()
}
