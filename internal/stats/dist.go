package stats

import "math"

// Zipf generates Zipf-distributed values in [0, n) with skew parameter s,
// using the rejection-inversion method of Hörmann (as in math/rand's Zipf,
// reimplemented here so it runs on our deterministic RNG).
//
// Zipf is not safe for concurrent use.
type Zipf struct {
	rng              *RNG
	n                uint64
	s                float64
	oneMinusS        float64
	oneOverOneMinusS float64
	hIntegralX1      float64
	hIntegralN       float64
	sDiv             float64
}

// NewZipf returns a Zipf generator over [0, n) with exponent s > 1 is not
// required; any s >= 0, s != 1 works (s == 1 is nudged slightly).
func NewZipf(rng *RNG, s float64, n uint64) *Zipf {
	if n == 0 {
		panic("stats: Zipf over empty domain")
	}
	if s == 1 {
		s = 1.000001
	}
	z := &Zipf{rng: rng, n: n, s: s}
	z.oneMinusS = 1 - s
	z.oneOverOneMinusS = 1 / z.oneMinusS
	z.hIntegralX1 = z.hIntegral(1.5) - 1
	z.hIntegralN = z.hIntegral(float64(n) + 0.5)
	z.sDiv = 2 - z.hIntegralInv(z.hIntegral(2.5)-z.h(2))
	return z
}

func (z *Zipf) h(x float64) float64 {
	return math.Exp(-z.s * math.Log(x))
}

func (z *Zipf) hIntegral(x float64) float64 {
	logX := math.Log(x)
	return helper2(z.oneMinusS*logX) * logX * z.h(x) * math.Pow(x, z.s)
}

func (z *Zipf) hIntegralInv(x float64) float64 {
	t := x * z.oneMinusS
	if t < -1 {
		t = -1
	}
	return math.Exp(helper1(t) * x)
}

// helper1 computes log1p(x)/x with a stable series near zero.
func helper1(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Log1p(x) / x
	}
	return 1 - x*(0.5-x*(1.0/3.0-0.25*x))
}

// helper2 computes expm1(x)/x with a stable series near zero.
func helper2(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Expm1(x) / x
	}
	return 1 + x*0.5*(1+x*(1.0/3.0)*(1+0.25*x))
}

// Next returns the next Zipf-distributed value in [0, n). Rank 0 is the
// most popular.
func (z *Zipf) Next() uint64 {
	for {
		u := z.hIntegralN + z.rng.Float64()*(z.hIntegralX1-z.hIntegralN)
		x := z.hIntegralInv(u)
		k := math.Floor(x + 0.5)
		if k < 1 {
			k = 1
		} else if k > float64(z.n) {
			k = float64(z.n)
		}
		if k-x <= z.sDiv || u >= z.hIntegral(k+0.5)-z.h(k) {
			return uint64(k) - 1
		}
	}
}

// HotSet draws keys such that hotFrac of the keyspace receives trafficFrac
// of the accesses — the Smallbank skew in §8.5.2 is "4% of accounts are
// accessed by 90% of transactions", i.e. HotSet{hotFrac: 0.04,
// trafficFrac: 0.90}. Within the hot and cold regions keys are uniform.
type HotSet struct {
	rng         *RNG
	n           uint64
	hotKeys     uint64
	trafficFrac float64
}

// NewHotSet builds a hot-set sampler over [0, n). hotFrac and trafficFrac
// must be in (0, 1].
func NewHotSet(rng *RNG, n uint64, hotFrac, trafficFrac float64) *HotSet {
	if n == 0 {
		panic("stats: HotSet over empty domain")
	}
	if hotFrac <= 0 || hotFrac > 1 || trafficFrac <= 0 || trafficFrac > 1 {
		panic("stats: HotSet fractions must be in (0,1]")
	}
	hot := uint64(float64(n) * hotFrac)
	if hot == 0 {
		hot = 1
	}
	return &HotSet{rng: rng, n: n, hotKeys: hot, trafficFrac: trafficFrac}
}

// Next returns the next key. Keys [0, hotKeys) are the hot region.
func (h *HotSet) Next() uint64 {
	if h.rng.Float64() < h.trafficFrac {
		return h.rng.Uint64n(h.hotKeys)
	}
	if h.hotKeys == h.n {
		return h.rng.Uint64n(h.n)
	}
	return h.hotKeys + h.rng.Uint64n(h.n-h.hotKeys)
}

// HotKeys reports the size of the hot region.
func (h *HotSet) HotKeys() uint64 { return h.hotKeys }
