package stats

import (
	"fmt"
	"math"
	"sort"
)

// Hist is a log-linear latency histogram in nanoseconds, in the spirit of
// HdrHistogram: values are bucketed with bounded relative error (~3.2%,
// 32 sub-buckets per power of two), supporting values up to ~1.1 hours.
// It answers percentile queries without retaining samples.
//
// Hist is not safe for concurrent use; aggregate per-thread histograms
// with Merge.
type Hist struct {
	counts [histBuckets]uint64
	n      uint64
	sum    uint64
	min    uint64
	max    uint64
}

const (
	histSubBits = 5 // 32 linear sub-buckets per octave
	histSub     = 1 << histSubBits
	histOctaves = 42 - histSubBits // values up to 2^42 ns (~73 min)
	histBuckets = (histOctaves + 1) * histSub
)

// NewHist returns an empty histogram.
func NewHist() *Hist {
	return &Hist{min: math.MaxUint64}
}

// bucketOf maps a value to its bucket index.
func bucketOf(v uint64) int {
	if v < histSub {
		return int(v)
	}
	// Position of the leading bit determines the octave.
	exp := 63 - leadingZeros64(v)
	shift := uint(exp - histSubBits)
	sub := (v >> shift) & (histSub - 1)
	idx := (exp-histSubBits+1)*histSub + int(sub)
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	return idx
}

// bucketLow returns the lowest value mapping to bucket idx (the inverse of
// bucketOf, up to bucket granularity).
func bucketLow(idx int) uint64 {
	if idx < histSub {
		return uint64(idx)
	}
	octave := idx/histSub - 1 + histSubBits
	sub := uint64(idx % histSub)
	return (1 << uint(octave)) + sub<<uint(octave-histSubBits)
}

func leadingZeros64(v uint64) int {
	n := 0
	if v <= 0x00000000FFFFFFFF {
		n += 32
		v <<= 32
	}
	if v <= 0x0000FFFFFFFFFFFF {
		n += 16
		v <<= 16
	}
	if v <= 0x00FFFFFFFFFFFFFF {
		n += 8
		v <<= 8
	}
	if v <= 0x0FFFFFFFFFFFFFFF {
		n += 4
		v <<= 4
	}
	if v <= 0x3FFFFFFFFFFFFFFF {
		n += 2
		v <<= 2
	}
	if v <= 0x7FFFFFFFFFFFFFFF {
		n++
	}
	return n
}

// Record adds one observation of v nanoseconds.
func (h *Hist) Record(v uint64) {
	h.counts[bucketOf(v)]++
	h.n++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded observations.
func (h *Hist) Count() uint64 { return h.n }

// Mean returns the arithmetic mean, or 0 when empty.
func (h *Hist) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Min returns the smallest recorded value, or 0 when empty.
func (h *Hist) Min() uint64 {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded value, or 0 when empty.
func (h *Hist) Max() uint64 { return h.max }

// Percentile returns the value at percentile p in [0,100]. The answer is
// the lower bound of the bucket containing the p-th observation, so it is
// within the histogram's relative error of the true order statistic.
func (h *Hist) Percentile(p float64) uint64 {
	if h.n == 0 {
		return 0
	}
	if p <= 0 {
		return h.min
	}
	if p >= 100 {
		return h.max
	}
	rank := uint64(math.Ceil(p / 100 * float64(h.n)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			return bucketLow(i)
		}
	}
	return h.max
}

// Median is shorthand for Percentile(50).
func (h *Hist) Median() uint64 { return h.Percentile(50) }

// P99 is shorthand for Percentile(99).
func (h *Hist) P99() uint64 { return h.Percentile(99) }

// Merge adds all of o's observations into h.
func (h *Hist) Merge(o *Hist) {
	if o == nil || o.n == 0 {
		return
	}
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
	h.n += o.n
	h.sum += o.sum
	if o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
}

// Reset returns the histogram to its empty state.
func (h *Hist) Reset() {
	*h = Hist{min: math.MaxUint64}
}

// String summarizes the distribution for logs and harness output.
func (h *Hist) String() string {
	if h.n == 0 {
		return "hist{empty}"
	}
	return fmt.Sprintf("hist{n=%d mean=%.0fns p50=%dns p99=%dns max=%dns}",
		h.n, h.Mean(), h.Median(), h.P99(), h.max)
}

// RunningMedian tracks an approximate running median over a bounded window
// using a ring of recent samples. The sender-side thread scheduler (§5.2)
// keeps one per thread for "median request size since last scheduling".
type RunningMedian struct {
	window  []uint64
	next    int
	filled  bool
	scratch []uint64
}

// NewRunningMedian returns a tracker over a window of size n (n >= 1).
func NewRunningMedian(n int) *RunningMedian {
	if n < 1 {
		n = 1
	}
	return &RunningMedian{window: make([]uint64, n), scratch: make([]uint64, n)}
}

// Add records one sample.
func (m *RunningMedian) Add(v uint64) {
	m.window[m.next] = v
	m.next++
	if m.next == len(m.window) {
		m.next = 0
		m.filled = true
	}
}

// Len reports how many samples are currently in the window.
func (m *RunningMedian) Len() int {
	if m.filled {
		return len(m.window)
	}
	return m.next
}

// Median returns the median of the samples in the window, or 0 if empty.
func (m *RunningMedian) Median() uint64 {
	n := m.Len()
	if n == 0 {
		return 0
	}
	s := m.scratch[:n]
	copy(s, m.window[:n])
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[n/2]
}

// Reset empties the window.
func (m *RunningMedian) Reset() {
	m.next = 0
	m.filled = false
}
