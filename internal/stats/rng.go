// Package stats provides the measurement substrate shared by the FLock
// library, the baselines, and the benchmark harness: deterministic random
// number generation, latency histograms with percentile extraction,
// streaming medians, and skewed key-distribution generators (Zipf, hot-set).
//
// Everything in this package is allocation-conscious: histograms and RNGs
// are used on the per-request fast path of the simulators and benchmarks.
package stats

// RNG is a small, fast, deterministic pseudo-random generator
// (xorshift128+). It is NOT safe for concurrent use; give each thread or
// simulation actor its own instance seeded distinctly.
//
// The zero value is invalid; use NewRNG.
type RNG struct {
	s0, s1 uint64
}

// NewRNG returns a generator seeded from seed. Two generators with the same
// seed produce identical streams, which the benchmark harness relies on for
// reproducible figures.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state. A zero seed is remapped to a fixed
// non-zero constant because xorshift must not start at the all-zero state.
func (r *RNG) Seed(seed uint64) {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	// SplitMix64 to spread the seed across both words.
	z := seed
	for i := 0; i < 2; i++ {
		z += 0x9e3779b97f4a7c15
		w := z
		w = (w ^ (w >> 30)) * 0xbf58476d1ce4e5b9
		w = (w ^ (w >> 27)) * 0x94d049bb133111eb
		w ^= w >> 31
		if i == 0 {
			r.s0 = w
		} else {
			r.s1 = w
		}
	}
	if r.s0 == 0 && r.s1 == 0 {
		r.s1 = 1
	}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x, y := r.s0, r.s1
	r.s0 = y
	x ^= x << 23
	x ^= x >> 17
	x ^= y ^ (y >> 26)
	r.s1 = x
	return x + y
}

// Uint64n returns a uniform value in [0, n). n must be > 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("stats: Uint64n with n == 0")
	}
	// Lemire's multiply-shift rejection-free approximation is fine here:
	// the bias for n << 2^64 is far below anything a benchmark can observe.
	hi, _ := mul64(r.Uint64(), n)
	return hi
}

// Intn returns a uniform value in [0, n). n must be > 0.
func (r *RNG) Intn(n int) int {
	return int(r.Uint64n(uint64(n)))
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return
}
