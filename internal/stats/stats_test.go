package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed RNGs diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical values", same)
	}
}

func TestRNGZeroSeedValid(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero-seeded RNG looks stuck at zero")
	}
}

func TestUint64nRange(t *testing.T) {
	r := NewRNG(7)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		v := r.Uint64n(n)
		return v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n == 0")
		}
	}()
	NewRNG(1).Uint64n(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestUniformity(t *testing.T) {
	r := NewRNG(11)
	const buckets = 16
	const samples = 160000
	var counts [buckets]int
	for i := 0; i < samples; i++ {
		counts[r.Intn(buckets)]++
	}
	want := samples / buckets
	for i, c := range counts {
		if c < want*9/10 || c > want*11/10 {
			t.Errorf("bucket %d count %d outside 10%% of %d", i, c, want)
		}
	}
}

func TestHistEmpty(t *testing.T) {
	h := NewHist()
	if h.Count() != 0 || h.Mean() != 0 || h.Median() != 0 || h.P99() != 0 || h.Min() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	if h.String() != "hist{empty}" {
		t.Fatalf("unexpected String: %q", h.String())
	}
}

func TestHistSingleValue(t *testing.T) {
	h := NewHist()
	h.Record(1000)
	if h.Count() != 1 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != 1000 || h.Max() != 1000 {
		t.Fatalf("min/max = %d/%d", h.Min(), h.Max())
	}
	// Bucketed value must be within 3.2% relative error.
	med := h.Median()
	if float64(med) < 1000*0.968 || med > 1000 {
		t.Fatalf("median %d not within bucket error of 1000", med)
	}
}

func TestHistBucketRoundTrip(t *testing.T) {
	// bucketLow(bucketOf(v)) must be <= v and within one sub-bucket.
	f := func(v uint64) bool {
		v &= (1 << 40) - 1 // stay in range
		idx := bucketOf(v)
		low := bucketLow(idx)
		if low > v {
			return false
		}
		// width of the bucket
		var width uint64 = 1
		if v >= histSub {
			exp := 63 - leadingZeros64(v)
			width = 1 << uint(exp-histSubBits)
		}
		return v-low < width
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestHistPercentilesAgainstSorted(t *testing.T) {
	r := NewRNG(99)
	h := NewHist()
	var vals []uint64
	for i := 0; i < 20000; i++ {
		v := r.Uint64n(1_000_000) + 1
		vals = append(vals, v)
		h.Record(v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, p := range []float64{10, 50, 90, 99, 99.9} {
		rank := int(math.Ceil(p/100*float64(len(vals)))) - 1
		exact := vals[rank]
		got := h.Percentile(p)
		lo := float64(exact) * 0.90
		hi := float64(exact) * 1.05
		if float64(got) < lo || float64(got) > hi {
			t.Errorf("p%.1f: hist %d vs exact %d (allowed [%.0f, %.0f])", p, got, exact, lo, hi)
		}
	}
}

func TestHistMerge(t *testing.T) {
	a, b := NewHist(), NewHist()
	r := NewRNG(5)
	whole := NewHist()
	for i := 0; i < 1000; i++ {
		v := r.Uint64n(10000)
		whole.Record(v)
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
	}
	a.Merge(b)
	if a.Count() != whole.Count() {
		t.Fatalf("merged count %d != %d", a.Count(), whole.Count())
	}
	if a.Median() != whole.Median() || a.P99() != whole.P99() {
		t.Fatalf("merged percentiles differ: p50 %d vs %d, p99 %d vs %d",
			a.Median(), whole.Median(), a.P99(), whole.P99())
	}
	if a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Fatal("merged min/max differ")
	}
}

func TestHistMergeNil(t *testing.T) {
	h := NewHist()
	h.Record(5)
	h.Merge(nil) // must not panic
	if h.Count() != 1 {
		t.Fatal("merge(nil) changed the histogram")
	}
}

func TestHistReset(t *testing.T) {
	h := NewHist()
	h.Record(123)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("reset did not clear histogram")
	}
	h.Record(7)
	if h.Min() != 7 {
		t.Fatal("min tracking broken after reset")
	}
}

func TestHistExtremeValues(t *testing.T) {
	h := NewHist()
	h.Record(0)
	h.Record(math.MaxUint64) // clamps to top bucket, must not panic
	if h.Count() != 2 {
		t.Fatal("records lost")
	}
	if h.Percentile(0) != 0 {
		t.Fatalf("p0 = %d", h.Percentile(0))
	}
	if h.Percentile(100) != math.MaxUint64 {
		t.Fatalf("p100 = %d", h.Percentile(100))
	}
}

func TestRunningMedian(t *testing.T) {
	m := NewRunningMedian(5)
	if m.Median() != 0 {
		t.Fatal("empty median should be 0")
	}
	for _, v := range []uint64{10, 20, 30} {
		m.Add(v)
	}
	if got := m.Median(); got != 20 {
		t.Fatalf("median of {10,20,30} = %d", got)
	}
	// Fill past the window: oldest values are evicted.
	for _, v := range []uint64{100, 100, 100, 100, 100} {
		m.Add(v)
	}
	if got := m.Median(); got != 100 {
		t.Fatalf("median after window overwrite = %d", got)
	}
	m.Reset()
	if m.Len() != 0 {
		t.Fatal("reset did not clear window")
	}
}

func TestRunningMedianWindowOne(t *testing.T) {
	m := NewRunningMedian(0) // clamped to 1
	m.Add(42)
	if m.Median() != 42 {
		t.Fatalf("median = %d", m.Median())
	}
	m.Add(7)
	if m.Median() != 7 {
		t.Fatalf("median after overwrite = %d", m.Median())
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(13)
	z := NewZipf(r, 0.99, 1000)
	const samples = 100000
	counts := make(map[uint64]int)
	for i := 0; i < samples; i++ {
		v := z.Next()
		if v >= 1000 {
			t.Fatalf("zipf out of range: %d", v)
		}
		counts[v]++
	}
	// Rank 0 must be much more popular than rank 500.
	if counts[0] < 20*counts[500]+1 {
		t.Errorf("zipf not skewed: rank0=%d rank500=%d", counts[0], counts[500])
	}
	// Top 10% of keys should capture the majority of traffic at s=0.99.
	top := 0
	for k, c := range counts {
		if k < 100 {
			top += c
		}
	}
	if top < samples/2 {
		t.Errorf("top decile has only %d/%d accesses", top, samples)
	}
}

func TestZipfSEqualsOne(t *testing.T) {
	z := NewZipf(NewRNG(1), 1.0, 100) // must not panic / divide by zero
	for i := 0; i < 1000; i++ {
		if v := z.Next(); v >= 100 {
			t.Fatalf("out of range: %d", v)
		}
	}
}

func TestHotSet(t *testing.T) {
	r := NewRNG(21)
	hs := NewHotSet(r, 100000, 0.04, 0.90)
	if hs.HotKeys() != 4000 {
		t.Fatalf("hot keys = %d", hs.HotKeys())
	}
	const samples = 100000
	hot := 0
	for i := 0; i < samples; i++ {
		v := hs.Next()
		if v >= 100000 {
			t.Fatalf("out of range: %d", v)
		}
		if v < 4000 {
			hot++
		}
	}
	frac := float64(hot) / samples
	if frac < 0.87 || frac > 0.93 {
		t.Errorf("hot traffic fraction %.3f, want ~0.90", frac)
	}
}

func TestHotSetDegenerate(t *testing.T) {
	hs := NewHotSet(NewRNG(2), 1, 1.0, 1.0)
	for i := 0; i < 100; i++ {
		if hs.Next() != 0 {
			t.Fatal("single-key hot set must return 0")
		}
	}
}

func TestMul64(t *testing.T) {
	hi, lo := mul64(math.MaxUint64, math.MaxUint64)
	if hi != math.MaxUint64-1 || lo != 1 {
		t.Fatalf("mul64 max*max = (%d, %d)", hi, lo)
	}
	hi, lo = mul64(1<<32, 1<<32)
	if hi != 1 || lo != 0 {
		t.Fatalf("mul64 2^32*2^32 = (%d, %d)", hi, lo)
	}
}

func BenchmarkRNG(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkHistRecord(b *testing.B) {
	h := NewHist()
	r := NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Record(r.Uint64n(1_000_000))
	}
}

func BenchmarkZipf(b *testing.B) {
	z := NewZipf(NewRNG(1), 0.99, 1<<20)
	for i := 0; i < b.N; i++ {
		_ = z.Next()
	}
}
