package telemetry

import (
	"testing"
)

// counterOverheadCeilingNs gates the cost of one Counter.Inc. The ISSUE
// budget is ~10 ns on quiet hardware; the gate allows headroom for shared
// CI machines while still catching a regression to a mutex or a map lookup
// (both are well over 50 ns).
const counterOverheadCeilingNs = 50

// TestCounterOverheadGate pins the single-increment cost of the hot-path
// counter. Run in ci.sh without -race (the race detector multiplies atomic
// costs and would gate on noise).
func TestCounterOverheadGate(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate skipped in -short")
	}
	if raceEnabled {
		t.Skip("timing gate skipped under -race")
	}
	var c Counter
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	ns := float64(res.T.Nanoseconds()) / float64(res.N)
	t.Logf("Counter.Inc: %.1f ns/op (%d iterations)", ns, res.N)
	if ns > counterOverheadCeilingNs {
		t.Fatalf("Counter.Inc costs %.1f ns/op, ceiling %d ns", ns, counterOverheadCeilingNs)
	}
}

// TestHotPathNoAlloc pins the zero-allocation property of every operation
// the RPC hot path performs: counter and gauge updates, histogram
// observation, and a disabled trace probe.
func TestHotPathNoAlloc(t *testing.T) {
	var c Counter
	var g Gauge
	var h Hist
	tr := NewTraceRing(16)
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Add(1)
		h.Observe(42)
		tr.Record(EvEnqueue, 1, 2, 3, 4)
	})
	if allocs != 0 {
		t.Fatalf("hot-path telemetry ops allocate %.1f allocs/op, want 0", allocs)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncParallel(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistObserve(b *testing.B) {
	var h Hist
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i))
	}
}

func BenchmarkTraceRecordDisabled(b *testing.B) {
	tr := NewTraceRing(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Record(EvEnqueue, 1, 2, uint64(i), 0)
	}
}
