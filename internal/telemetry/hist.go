package telemetry

import "math/bits"

// histBuckets is one bucket per possible bit length of a uint64, plus the
// zero bucket: bucket 0 counts observations of exactly 0, bucket i counts
// values in [2^(i-1), 2^i - 1].
const histBuckets = 65

// Hist is a lock-free power-of-two histogram. Observe is a pair of atomic
// adds from any goroutine; Snapshot may run concurrently with observers
// (bucket counts and the sum are each individually consistent). Resolution
// is one octave — coarse next to stats.Hist, but enough for the shapes the
// instrumentation cares about (coalescing degrees, tenure in nanoseconds)
// at hot-path cost.
type Hist struct {
	buckets [histBuckets]pad64
	sum     Counter
}

// Observe records one value.
func (h *Hist) Observe(v uint64) {
	h.buckets[bits.Len64(v)].v.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations so far.
func (h *Hist) Count() uint64 {
	var n uint64
	for i := range h.buckets {
		n += h.buckets[i].v.Load()
	}
	return n
}

// Snapshot copies the histogram's current state.
func (h *Hist) Snapshot() HistSnapshot {
	s := HistSnapshot{Sum: h.sum.Load()}
	for i := range h.buckets {
		n := h.buckets[i].v.Load()
		if n == 0 {
			continue
		}
		le := ^uint64(0)
		if i < 64 {
			le = 1<<uint(i) - 1
		}
		s.Buckets = append(s.Buckets, HistBucket{Le: le, N: n})
		s.Count += n
	}
	return s
}

// HistBucket is one non-empty bucket: N observations with value ≤ Le (and
// greater than the previous bucket's Le).
type HistBucket struct {
	Le uint64 `json:"le"`
	N  uint64 `json:"n"`
}

// HistSnapshot is a point-in-time copy of a Hist, JSON-encodable. Buckets
// are ascending by Le and omit empty buckets.
type HistSnapshot struct {
	Count   uint64       `json:"count"`
	Sum     uint64       `json:"sum"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Mean returns the arithmetic mean of the observations, 0 when empty.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns the upper bound of the bucket containing the q-th
// quantile (0 < q ≤ 1) — an over-estimate by at most one octave.
func (s HistSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	target := uint64(q * float64(s.Count))
	if target == 0 {
		target = 1
	}
	var seen uint64
	for _, b := range s.Buckets {
		seen += b.N
		if seen >= target {
			return b.Le
		}
	}
	return s.Buckets[len(s.Buckets)-1].Le
}

// Sub returns the delta histogram cur − prev, for rate views over an
// interval. Both snapshots must come from the same Hist (buckets are
// matched by upper bound).
func (s HistSnapshot) Sub(prev HistSnapshot) HistSnapshot {
	out := HistSnapshot{Count: s.Count - prev.Count, Sum: s.Sum - prev.Sum}
	old := make(map[uint64]uint64, len(prev.Buckets))
	for _, b := range prev.Buckets {
		old[b.Le] = b.N
	}
	for _, b := range s.Buckets {
		if n := b.N - old[b.Le]; n > 0 {
			out.Buckets = append(out.Buckets, HistBucket{Le: b.Le, N: n})
		}
	}
	return out
}
