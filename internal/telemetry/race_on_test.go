//go:build race

package telemetry

// raceEnabled reports that the race detector is active, which multiplies
// atomic-op cost and would make the timing gate flaky.
const raceEnabled = true
