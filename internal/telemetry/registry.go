package telemetry

import (
	"encoding/json"
	"sync"
)

// Registry is a named collection of metrics, typically one per Node (plus
// one per Network for fabric/pool-wide state). Metric handles are resolved
// once at construction time — Counter/Gauge/Hist are get-or-create, so the
// hot path holds direct pointers and never consults the registry again.
// CounterFunc/GaugeFunc register read-at-snapshot views over counters that
// already exist elsewhere (device counters, pool stats, fault stats),
// which is how the pre-telemetry ad-hoc counters fold in without touching
// their write paths.
type Registry struct {
	mu           sync.Mutex
	counters     map[string]*Counter
	gauges       map[string]*Gauge
	hists        map[string]*Hist
	counterFuncs map[string]func() uint64
	gaugeFuncs   map[string]func() int64
	trace        *TraceRing
}

// DefaultTraceDepth is the per-registry trace ring capacity.
const DefaultTraceDepth = 4096

// New creates an empty registry with a disabled trace ring.
func New() *Registry {
	return &Registry{
		counters:     make(map[string]*Counter),
		gauges:       make(map[string]*Gauge),
		hists:        make(map[string]*Hist),
		counterFuncs: make(map[string]func() uint64),
		gaugeFuncs:   make(map[string]func() int64),
		trace:        NewTraceRing(DefaultTraceDepth),
	}
}

// Counter returns the counter registered under name, creating it if new.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if new.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Hist returns the histogram registered under name, creating it if new.
func (r *Registry) Hist(name string) *Hist {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Hist{}
		r.hists[name] = h
	}
	return h
}

// CounterFunc registers a snapshot-time counter view; f must be safe to
// call from any goroutine. Re-registering a name replaces the function.
func (r *Registry) CounterFunc(name string, f func() uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counterFuncs[name] = f
}

// GaugeFunc registers a snapshot-time gauge view.
func (r *Registry) GaugeFunc(name string, f func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFuncs[name] = f
}

// Trace returns the registry's lifecycle trace ring.
func (r *Registry) Trace() *TraceRing { return r.trace }

// Snapshot reads every metric. It allocates freely — snapshots are for
// reporting paths, never the hot path.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make(map[string]uint64, len(r.counters)+len(r.counterFuncs))
	for name, c := range r.counters {
		counters[name] = c.Load()
	}
	gauges := make(map[string]int64, len(r.gauges)+len(r.gaugeFuncs))
	for name, g := range r.gauges {
		gauges[name] = g.Load()
	}
	hists := make(map[string]HistSnapshot, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h.Snapshot()
	}
	cfuncs := make(map[string]func() uint64, len(r.counterFuncs))
	for name, f := range r.counterFuncs {
		cfuncs[name] = f
	}
	gfuncs := make(map[string]func() int64, len(r.gaugeFuncs))
	for name, f := range r.gaugeFuncs {
		gfuncs[name] = f
	}
	r.mu.Unlock()

	// Funcs run outside the registry lock: they may take other locks (the
	// connection cache's, the fault-stats mutex) and must not nest under
	// ours.
	for name, f := range cfuncs {
		counters[name] = f()
	}
	for name, f := range gfuncs {
		gauges[name] = f()
	}
	s := Snapshot{Counters: counters, Gauges: gauges, Hists: hists}
	if r.trace != nil {
		s.Trace = r.trace.Events()
	}
	return s
}

// Snapshot is a point-in-time copy of a registry (or a merge of several),
// JSON-encodable as the -metrics output of the load tools.
type Snapshot struct {
	Counters map[string]uint64       `json:"counters,omitempty"`
	Gauges   map[string]int64        `json:"gauges,omitempty"`
	Hists    map[string]HistSnapshot `json:"hists,omitempty"`
	Trace    []TraceEvent            `json:"trace,omitempty"`
}

// Merge folds other into s with every name prefixed — how a network-wide
// snapshot composes per-node registries ("node0.", "node1.", ...).
func (s *Snapshot) Merge(prefix string, other Snapshot) {
	if len(other.Counters) > 0 && s.Counters == nil {
		s.Counters = make(map[string]uint64)
	}
	for name, v := range other.Counters {
		s.Counters[prefix+name] = v
	}
	if len(other.Gauges) > 0 && s.Gauges == nil {
		s.Gauges = make(map[string]int64)
	}
	for name, v := range other.Gauges {
		s.Gauges[prefix+name] = v
	}
	if len(other.Hists) > 0 && s.Hists == nil {
		s.Hists = make(map[string]HistSnapshot)
	}
	for name, v := range other.Hists {
		s.Hists[prefix+name] = v
	}
	s.Trace = append(s.Trace, other.Trace...)
}

// Delta returns s − prev for the cumulative parts (counters and
// histograms); gauges and trace are instantaneous and carried over from s.
// A counter absent from prev is treated as starting at zero.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	out := Snapshot{
		Counters: make(map[string]uint64, len(s.Counters)),
		Gauges:   s.Gauges,
		Hists:    make(map[string]HistSnapshot, len(s.Hists)),
		Trace:    s.Trace,
	}
	for name, v := range s.Counters {
		out.Counters[name] = v - prev.Counters[name]
	}
	for name, h := range s.Hists {
		out.Hists[name] = h.Sub(prev.Hists[name])
	}
	return out
}

// JSON renders the snapshot as indented JSON.
func (s Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}
