// Package telemetry is FLock's zero-dependency observability subsystem:
// sharded atomic counters, gauges, lock-free power-of-two histograms, and
// a sampled ring-buffer trace of RPC lifecycle events, tied together by a
// Registry with a Snapshot/delta API and JSON encoding.
//
// The design constraint is the hot path: FLock's leader/dispatcher loops
// are allocation-free and race-tested, and instrumentation must not change
// that. Every metric here increments with a single atomic add on
// pre-registered state — metrics are created at node/device/connection
// construction, never lazily on the first RPC — and the trace ring costs
// one atomic load per probe while disabled. The alloc-regression gate at
// the repo root and the counter-overhead gate in this package pin both
// properties in CI.
//
// Relationship to internal/stats: stats.Hist is a precise log-linear
// histogram for single-threaded measurement (benchmark latency reports);
// telemetry.Hist trades resolution for concurrency — power-of-two buckets
// updated lock-free from any goroutine. The live instrumentation uses
// telemetry.Hist everywhere; tools keep stats.Hist for percentile output.
package telemetry

import (
	"sync/atomic"
	"unsafe"
)

// shardCount is the number of padded cells a Counter stripes over. Eight
// covers the concurrency of the hot paths that share one counter (leaders
// on different QPs, dispatchers, the device pipeline) without bloating the
// many mostly-single-writer counters.
const shardCount = 8

// pad64 is one counter cell padded to a cache line so concurrent writers
// on different shards never false-share.
type pad64 struct {
	v atomic.Uint64
	_ [56]byte
}

// Counter is a monotonically increasing counter striped across padded
// shards. The zero value is ready to use. Inc/Add are wait-free single
// atomic adds; Load sums the shards and may run concurrently with writers
// (it is monotone but not an instantaneous cut, like any striped counter).
type Counter struct {
	shards [shardCount]pad64
}

// shardIndex spreads goroutines across shards. Goroutine stacks are
// distinct allocations spaced far beyond a page apart, so the page bits of
// a stack address distinguish goroutines while staying stable across calls
// from the same frame. The conversion uintptr(unsafe.Pointer(&probe)) is
// address arithmetic only — the pointer is never reconstructed.
func shardIndex() uint64 {
	var probe byte
	return (uint64(uintptr(unsafe.Pointer(&probe))) >> 12) % shardCount
}

// Inc adds one.
func (c *Counter) Inc() { c.shards[shardIndex()].v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.shards[shardIndex()].v.Add(n) }

// Load returns the counter's current total.
func (c *Counter) Load() uint64 {
	var sum uint64
	for i := range c.shards {
		sum += c.shards[i].v.Load()
	}
	return sum
}

// Gauge is an instantaneous signed value (queue depths, active-QP counts).
// The zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta (negative to decrement).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }
