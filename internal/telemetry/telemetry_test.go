package telemetry

import (
	"encoding/json"
	"sync"
	"testing"
)

func TestCounterConcurrentSum(t *testing.T) {
	var c Counter
	const goroutines, per = 16, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != goroutines*per {
		t.Fatalf("Load = %d, want %d", got, goroutines*per)
	}
	c.Add(5)
	if got := c.Load(); got != goroutines*per+5 {
		t.Fatalf("after Add(5): %d", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if got := g.Load(); got != 7 {
		t.Fatalf("Load = %d, want 7", got)
	}
}

func TestHistBucketsAndStats(t *testing.T) {
	var h Hist
	for _, v := range []uint64{0, 1, 2, 3, 4, 1024} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 6 {
		t.Fatalf("Count = %d, want 6", s.Count)
	}
	if s.Sum != 1034 {
		t.Fatalf("Sum = %d, want 1034", s.Sum)
	}
	// Expected buckets: le=0 (the zero), le=1 {1}, le=3 {2,3}, le=7 {4},
	// le=1023? no — 1024 has bit length 11 → le=2047.
	want := map[uint64]uint64{0: 1, 1: 1, 3: 2, 7: 1, 2047: 1}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want %v", s.Buckets, want)
	}
	for _, b := range s.Buckets {
		if want[b.Le] != b.N {
			t.Fatalf("bucket le=%d n=%d, want n=%d", b.Le, b.N, want[b.Le])
		}
	}
	if m := s.Mean(); m < 172 || m > 173 {
		t.Fatalf("Mean = %v", m)
	}
	if q := s.Quantile(0.5); q != 3 {
		t.Fatalf("Quantile(0.5) = %d, want 3", q)
	}
	if q := s.Quantile(1.0); q != 2047 {
		t.Fatalf("Quantile(1.0) = %d, want 2047", q)
	}

	// Delta over a second batch.
	h.Observe(2)
	d := h.Snapshot().Sub(s)
	if d.Count != 1 || d.Sum != 2 {
		t.Fatalf("delta = %+v", d)
	}
	if len(d.Buckets) != 1 || d.Buckets[0].Le != 3 || d.Buckets[0].N != 1 {
		t.Fatalf("delta buckets = %+v", d.Buckets)
	}
}

func TestHistConcurrent(t *testing.T) {
	var h Hist
	var wg sync.WaitGroup
	const goroutines, per = 8, 5000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(uint64(g*per + i))
			}
		}(g)
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*per {
		t.Fatalf("Count = %d, want %d", got, goroutines*per)
	}
}

func TestRegistrySnapshotAndJSON(t *testing.T) {
	r := New()
	r.Counter("core.msgs_out").Add(7)
	r.Gauge("core.active_qps").Set(3)
	r.Hist("core.degree").Observe(4)
	r.CounterFunc("rnic.cache_hits", func() uint64 { return 42 })
	r.GaugeFunc("mem.outstanding", func() int64 { return -1 })

	// Same name twice returns the same metric (no lazy duplicates).
	if r.Counter("core.msgs_out") != r.Counter("core.msgs_out") {
		t.Fatal("Counter not idempotent")
	}

	s := r.Snapshot()
	if s.Counters["core.msgs_out"] != 7 || s.Counters["rnic.cache_hits"] != 42 {
		t.Fatalf("counters = %v", s.Counters)
	}
	if s.Gauges["core.active_qps"] != 3 || s.Gauges["mem.outstanding"] != -1 {
		t.Fatalf("gauges = %v", s.Gauges)
	}
	if s.Hists["core.degree"].Count != 1 {
		t.Fatalf("hists = %v", s.Hists)
	}

	b, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["core.msgs_out"] != 7 {
		t.Fatalf("round trip lost counters: %s", b)
	}
}

func TestSnapshotDeltaAndMerge(t *testing.T) {
	r := New()
	c := r.Counter("x")
	c.Add(10)
	before := r.Snapshot()
	c.Add(5)
	d := r.Snapshot().Delta(before)
	if d.Counters["x"] != 5 {
		t.Fatalf("delta = %v", d.Counters)
	}

	var merged Snapshot
	merged.Merge("node0.", before)
	merged.Merge("node1.", d)
	if merged.Counters["node0.x"] != 10 || merged.Counters["node1.x"] != 5 {
		t.Fatalf("merged = %v", merged.Counters)
	}
}

func TestTraceRingSamplingAndWrap(t *testing.T) {
	tr := NewTraceRing(4)
	// Disabled: records nothing.
	tr.Record(EvEnqueue, 0, 0, 0, 0)
	if got := tr.Events(); len(got) != 0 {
		t.Fatalf("disabled ring recorded %d events", len(got))
	}

	tr.Enable(4) // keep seq % 4 == 0
	for seq := uint64(0); seq < 8; seq++ {
		tr.Record(EvEnqueue, 1, 2, seq, 0)
	}
	evs := tr.Events()
	if len(evs) != 2 || evs[0].Seq != 0 || evs[1].Seq != 4 {
		t.Fatalf("sampled events = %+v", evs)
	}

	// Per-message events (seq 0) always pass; wrap keeps the last 4 in order.
	for i := 0; i < 6; i++ {
		tr.Record(EvPost, i, 0, 0, uint64(i))
	}
	evs = tr.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(evs))
	}
	for i, ev := range evs { // last four posts: args 2..5, oldest first
		if ev.Arg != uint64(i+2) {
			t.Fatalf("event %d arg = %d, events %+v", i, ev.Arg, evs)
		}
	}

	tr.Disable()
	tr.Record(EvPost, 9, 0, 0, 9)
	if got := tr.Events(); len(got) != 4 {
		t.Fatal("disabled ring kept recording")
	}

	if EvCombine.String() != "combine" || EventKind(99).String() != "unknown" {
		t.Fatal("EventKind names wrong")
	}
	b, err := json.Marshal(EvRelease)
	if err != nil || string(b) != `"release"` {
		t.Fatalf("kind JSON = %s, %v", b, err)
	}
}
