package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// EventKind labels one stage of the RPC lifecycle (§4 of the paper): a
// request enters its QP's thread combining queue, a leader claims and
// combines the batch, the coalesced message is posted with one doorbell,
// the response message completes on the client, the dispatcher delivers
// the item to its thread, and the application releases the buffer lease.
type EventKind uint8

// RPC lifecycle stages, in path order.
const (
	EvEnqueue  EventKind = iota + 1 // TCQ enqueue (per request)
	EvCombine                       // leader claimed a batch (per message)
	EvPost                          // doorbell rung for the batch (per message)
	EvComplete                      // response message arrived (per message)
	EvDispatch                      // response delivered to thread (per request)
	EvRelease                       // application released the lease (per request)
)

var kindNames = [...]string{
	EvEnqueue:  "enqueue",
	EvCombine:  "combine",
	EvPost:     "post",
	EvComplete: "complete",
	EvDispatch: "dispatch",
	EvRelease:  "release",
}

// String names the event kind.
func (k EventKind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return "unknown"
}

// MarshalJSON encodes the kind as its name.
func (k EventKind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// TraceEvent is one recorded lifecycle event. Seq is the RPC sequence ID
// for per-request kinds and 0 for per-message kinds; Arg carries a
// kind-specific quantity (batch size for combine/post/complete, payload
// bytes for enqueue).
type TraceEvent struct {
	TS     int64     `json:"ts_ns"` // UnixNano at record time
	Kind   EventKind `json:"ev"`
	QP     int       `json:"qp"` // QP index within the connection, -1 unknown
	Thread uint32    `json:"thread"`
	Seq    uint64    `json:"seq"`
	Arg    uint64    `json:"arg"`
}

// TraceRing is a fixed-capacity ring of lifecycle events. It is disabled
// by default: a disabled ring costs one atomic load per probe and records
// nothing, which is what keeps always-on telemetry off the hot path's
// allocation and latency budget. When enabled, per-request events are
// sampled by sequence ID (seq % sample == 0) so a sampled request keeps
// its complete lifecycle chain; per-message events (Seq 0) always record.
// Recording takes a mutex — acceptable at sampled rates, and what keeps
// the ring race-free under -race.
type TraceRing struct {
	enabled atomic.Bool
	mask    atomic.Uint64 // sample-1; sample is a power of two

	mu      sync.Mutex
	buf     []TraceEvent
	cap     int
	next    int
	wrapped bool
}

// NewTraceRing creates a disabled ring that will hold the last `capacity`
// events once enabled (the buffer is allocated on Enable, off the hot
// path, so idle nodes pay nothing).
func NewTraceRing(capacity int) *TraceRing {
	if capacity <= 0 {
		capacity = 4096
	}
	return &TraceRing{cap: capacity}
}

// Enable starts recording, keeping every sample-th request lifecycle
// (sample is rounded up to a power of two; values ≤ 1 record everything).
func (t *TraceRing) Enable(sample int) {
	if sample < 1 {
		sample = 1
	}
	pow := 1
	for pow < sample {
		pow <<= 1
	}
	t.mu.Lock()
	if t.buf == nil {
		t.buf = make([]TraceEvent, t.cap)
	}
	t.mu.Unlock()
	t.mask.Store(uint64(pow - 1))
	t.enabled.Store(true)
}

// Disable stops recording; buffered events remain readable.
func (t *TraceRing) Disable() { t.enabled.Store(false) }

// Enabled reports whether the ring is recording.
func (t *TraceRing) Enabled() bool { return t.enabled.Load() }

// Record appends one event if the ring is enabled and seq passes the
// sampling filter. The fast path out (disabled) is a single atomic load.
func (t *TraceRing) Record(kind EventKind, qp int, thread uint32, seq, arg uint64) {
	if !t.enabled.Load() {
		return
	}
	if seq&t.mask.Load() != 0 {
		return
	}
	ev := TraceEvent{
		TS: time.Now().UnixNano(), Kind: kind,
		QP: qp, Thread: thread, Seq: seq, Arg: arg,
	}
	t.mu.Lock()
	if t.buf != nil {
		t.buf[t.next] = ev
		t.next++
		if t.next == len(t.buf) {
			t.next = 0
			t.wrapped = true
		}
	}
	t.mu.Unlock()
}

// Events copies out the buffered events, oldest first.
func (t *TraceRing) Events() []TraceEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.buf == nil {
		return nil
	}
	var out []TraceEvent
	if t.wrapped {
		out = make([]TraceEvent, 0, len(t.buf))
		out = append(out, t.buf[t.next:]...)
		out = append(out, t.buf[:t.next]...)
	} else {
		out = append(out, t.buf[:t.next]...)
	}
	return out
}
