package txn

import (
	"encoding/binary"
	"fmt"

	"flock/internal/kvstore"
	"flock/internal/workload"
)

// Transport is the coordinator's view of the cluster: pipelined RPCs to
// any server plus (optionally) a one-sided read of a word in a server's
// primary store arena.
type Transport interface {
	// CallMulti issues reqs[i] to servers[i] concurrently (pipelined) and
	// returns the responses in order.
	CallMulti(servers []int, rpcID uint32, reqs [][]byte) ([][]byte, error)
	// ReadWord reads 8 bytes at off in a server's primary arena. ok is
	// false when the transport has no one-sided reads (UD), in which case
	// the coordinator validates by RPC.
	ReadWord(server int, off int) (word uint64, ok bool, err error)
}

// Coordinator executes transactions against the cluster. One coordinator
// serves one client thread; it is not safe for concurrent use.
type Coordinator struct {
	cfg Config
	tr  Transport

	// Commits and Aborts count outcomes.
	Commits uint64
	Aborts  uint64
}

// NewCoordinator builds a coordinator over a transport.
func NewCoordinator(cfg Config, tr Transport) *Coordinator {
	return &Coordinator{cfg: cfg.WithDefaults(), tr: tr}
}

// partitionSets groups a transaction's keys by partition.
type partitionSets struct {
	parts  []int // involved partitions, ascending order of first use
	reads  map[int][]uint64
	writes map[int][]uint64
}

func (c *Coordinator) split(t *workload.Txn) partitionSets {
	ps := partitionSets{reads: make(map[int][]uint64), writes: make(map[int][]uint64)}
	touch := func(p int) {
		for _, q := range ps.parts {
			if q == p {
				return
			}
		}
		ps.parts = append(ps.parts, p)
	}
	for _, k := range t.Reads {
		p := c.cfg.PartitionOf(k)
		ps.reads[p] = append(ps.reads[p], k)
		touch(p)
	}
	for _, k := range t.Writes {
		p := c.cfg.PartitionOf(k)
		ps.writes[p] = append(ps.writes[p], k)
		touch(p)
	}
	return ps
}

// Run executes one transaction to commit or abort. ErrAborted signals an
// OCC conflict (retryable); other errors are transport failures.
func (c *Coordinator) Run(t *workload.Txn) error {
	ps := c.split(t)

	// 1. Execution phase: one RPC per involved partition.
	reqs := make([][]byte, len(ps.parts))
	for i, p := range ps.parts {
		reqs[i] = encodeExecReq(ps.reads[p], ps.writes[p])
	}
	resps, err := c.tr.CallMulti(ps.parts, RPCExec, reqs)
	if err != nil {
		return err
	}
	execOut := make(map[int]partExec, len(ps.parts))
	lockedParts := ps.parts[:0:0]
	conflicted := false
	for i, p := range ps.parts {
		status, rd, wv, err := decodeExecResp(resps[i], len(ps.reads[p]), len(ps.writes[p]), c.cfg.ValSize)
		if err != nil {
			return err
		}
		if status != execOK {
			conflicted = true
			continue
		}
		execOut[p] = partExec{reads: rd, writeVals: wv}
		if len(ps.writes[p]) > 0 {
			lockedParts = append(lockedParts, p)
		}
	}
	if conflicted {
		c.abort(ps, lockedParts)
		return ErrAborted
	}

	// 2. Validation phase: re-check read-set versions — one-sided when
	// the transport supports it (FLock), RPC otherwise (FaSST).
	if !c.validate(ps, execOut) {
		c.abort(ps, lockedParts)
		return ErrAborted
	}

	// Compute new write values: old + Delta (the engines' canonical
	// read-modify-write; see workload.Txn).
	newVals := make(map[int][][]byte, len(lockedParts))
	for _, p := range lockedParts {
		vals := make([][]byte, len(ps.writes[p]))
		for i, old := range execOut[p].writeVals {
			nv := make([]byte, c.cfg.ValSize)
			copy(nv, old)
			binary.LittleEndian.PutUint64(nv[:8], binary.LittleEndian.Uint64(old[:8])+t.Delta)
			vals[i] = nv
		}
		newVals[p] = vals
	}

	// 3. Logging phase: updates to every replica of each written
	// partition; replicas ACK after applying.
	var logServers []int
	var logReqs [][]byte
	for _, p := range lockedParts {
		msg := encodeUpdates(p, ps.writes[p], newVals[p], c.cfg.ValSize)
		for _, r := range c.cfg.ReplicasOf(p) {
			logServers = append(logServers, r)
			logReqs = append(logReqs, msg)
		}
	}
	if len(logServers) > 0 {
		acks, err := c.tr.CallMulti(logServers, RPCLog, logReqs)
		if err != nil {
			return err
		}
		for _, a := range acks {
			if len(a) != 1 || a[0] != 1 {
				return fmt.Errorf("txn: replica rejected log record")
			}
		}
	}

	// 4. Commit phase: primaries install and unlock.
	if len(lockedParts) > 0 {
		reqs := make([][]byte, len(lockedParts))
		for i, p := range lockedParts {
			reqs[i] = encodeUpdates(p, ps.writes[p], newVals[p], c.cfg.ValSize)
		}
		acks, err := c.tr.CallMulti(lockedParts, RPCCommit, reqs)
		if err != nil {
			return err
		}
		for _, a := range acks {
			if len(a) != 1 || a[0] != 1 {
				return fmt.Errorf("txn: primary rejected commit")
			}
		}
	}
	c.Commits++
	return nil
}

// partExec is one partition's execution-phase result.
type partExec struct {
	reads     []execRead
	writeVals [][]byte
}

// validate re-checks every read-set key's version: unchanged and
// unlocked. The one-sided path reads each version word directly from the
// primary's arena; the RPC path batches one validate call per partition.
func (c *Coordinator) validate(ps partitionSets, execOut map[int]partExec) bool {
	var rpcServers []int
	var rpcReqs [][]byte
	var rpcWant [][]uint64 // expected version words per request
	for _, p := range ps.parts {
		rd := execOut[p].reads
		if len(rd) == 0 {
			continue
		}
		// Try the one-sided path first.
		oneSided := true
		for i, r := range rd {
			word, ok, err := c.tr.ReadWord(p, int(r.verOff))
			if err != nil {
				return false
			}
			if !ok {
				oneSided = false
				break
			}
			if lockedWord(word) || versionOf(word) != versionOf(rd[i].version) {
				return false
			}
		}
		if oneSided {
			continue
		}
		rpcServers = append(rpcServers, p)
		rpcReqs = append(rpcReqs, encodeKeys(ps.reads[p]))
		want := make([]uint64, len(rd))
		for i, r := range rd {
			want[i] = r.version
		}
		rpcWant = append(rpcWant, want)
	}
	if len(rpcServers) == 0 {
		return true
	}
	resps, err := c.tr.CallMulti(rpcServers, RPCValidate, rpcReqs)
	if err != nil {
		return false
	}
	for i, resp := range resps {
		words, err := decodeWords(resp, len(rpcWant[i]))
		if err != nil {
			return false
		}
		for j, w := range words {
			if lockedWord(w) || versionOf(w) != versionOf(rpcWant[i][j]) {
				return false
			}
		}
	}
	return true
}

// abort unlocks write sets on partitions that granted locks.
func (c *Coordinator) abort(ps partitionSets, lockedParts []int) {
	if len(lockedParts) == 0 {
		c.Aborts++
		return
	}
	reqs := make([][]byte, len(lockedParts))
	for i, p := range lockedParts {
		reqs[i] = encodeKeys(ps.writes[p])
	}
	c.tr.CallMulti(lockedParts, RPCAbort, reqs) //nolint:errcheck // best effort
	c.Aborts++
}

// RunRetry runs t, retrying OCC aborts up to maxRetries; it returns the
// number of attempts made and the final error (nil on commit).
func (c *Coordinator) RunRetry(t *workload.Txn, maxRetries int) (int, error) {
	for attempt := 1; ; attempt++ {
		err := c.Run(t)
		if err == nil {
			return attempt, nil
		}
		if err != ErrAborted || attempt > maxRetries {
			return attempt, err
		}
	}
}

// Locked re-exports the kvstore lock-bit test for validation call sites.
func lockedWord(w uint64) bool { return kvstore.Locked(w) }

func versionOf(w uint64) uint64 { return kvstore.VersionOf(w) }
