package txn

import (
	"fmt"
	"sort"
	"sync/atomic"

	"flock/internal/kvstore"
)

// Registrar is the handler-registration surface both transports' servers
// expose (core.Node and udrpc.Server).
type Registrar interface {
	RegisterHandler(rpcID uint32, fn func(req []byte) []byte)
}

// Server is one transaction server: primary for its own partition and
// replica for Replication-1 neighbours. It is transport-neutral — wire it
// to a FLock node or a UD server through Register.
type Server struct {
	cfg    Config
	idx    int
	stores map[int]*kvstore.Store // partition → store (primary or replica)

	execs   atomic.Uint64
	aborts  atomic.Uint64
	commits atomic.Uint64
	logs    atomic.Uint64
}

// NewServer builds server idx over the given per-partition arenas. arenas
// must contain one Mem per partition this server hosts (its own plus the
// partitions it replicates) — kvstore.ArenaSize(StoreCapacity, ValSize)
// bytes each. The primary arena is the one remote validation reads, so
// over FLock it should be an exported rnic.MemRegion.
func NewServer(cfg Config, idx int, arenas map[int]kvstore.Mem) (*Server, error) {
	cfg = cfg.WithDefaults()
	s := &Server{cfg: cfg, idx: idx, stores: make(map[int]*kvstore.Store)}
	for p, mem := range arenas {
		if !cfg.HostsPartition(idx, p) {
			return nil, fmt.Errorf("txn: server %d does not host partition %d", idx, p)
		}
		st, err := kvstore.New(mem, cfg.StoreCapacity, cfg.ValSize)
		if err != nil {
			return nil, err
		}
		s.stores[p] = st
	}
	if s.stores[idx] == nil {
		return nil, fmt.Errorf("txn: server %d missing its primary arena", idx)
	}
	return s, nil
}

// Store returns the server's store for a partition (nil if not hosted).
func (s *Server) Store(p int) *kvstore.Store { return s.stores[p] }

// Stats reports (execs, commits, aborts, logs) handled.
func (s *Server) Stats() (execs, commits, aborts, logs uint64) {
	return s.execs.Load(), s.commits.Load(), s.aborts.Load(), s.logs.Load()
}

// Register binds the engine's five handlers on a transport server.
func (s *Server) Register(r Registrar) {
	r.RegisterHandler(RPCExec, s.handleExec)
	r.RegisterHandler(RPCValidate, s.handleValidate)
	r.RegisterHandler(RPCLog, s.handleLog)
	r.RegisterHandler(RPCCommit, s.handleCommit)
	r.RegisterHandler(RPCAbort, s.handleAbort)
}

// handleExec is the execution phase on the primary: lock the write set
// (sorted, non-blocking — conflict aborts), read both sets, return values
// + versions + version-word offsets for the read set.
func (s *Server) handleExec(req []byte) []byte {
	s.execs.Add(1)
	reads, writes, err := decodeExecReq(req)
	if err != nil {
		return encodeExecResp(execLocked, nil, nil, s.cfg.ValSize)
	}
	st := s.stores[s.idx]

	sorted := append([]uint64(nil), writes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	locked := sorted[:0]
	for _, k := range sorted {
		if err := st.Lock(k); err != nil {
			for _, u := range locked {
				st.Unlock(u, nil) //nolint:errcheck
			}
			s.aborts.Add(1)
			return encodeExecResp(execLocked, nil, nil, s.cfg.ValSize)
		}
		locked = append(locked, k)
	}

	outReads := make([]execRead, 0, len(reads))
	abort := func() []byte {
		for _, u := range locked {
			st.Unlock(u, nil) //nolint:errcheck
		}
		s.aborts.Add(1)
		return encodeExecResp(execLocked, nil, nil, s.cfg.ValSize)
	}
	for _, k := range reads {
		val := make([]byte, s.cfg.ValSize)
		ver, err := st.Get(k, val)
		if err != nil {
			return abort()
		}
		off, err := st.VersionOffset(k)
		if err != nil {
			return abort()
		}
		outReads = append(outReads, execRead{verOff: uint64(off), version: ver, val: val})
	}
	writeVals := make([][]byte, 0, len(writes))
	for _, k := range writes {
		val := make([]byte, s.cfg.ValSize)
		if err := st.GetLocked(k, val); err != nil {
			return abort()
		}
		writeVals = append(writeVals, val)
	}
	return encodeExecResp(execOK, outReads, writeVals, s.cfg.ValSize)
}

// handleValidate re-reads version words for the read set — the RPC
// fallback used by the UD (FaSST-style) transport where one-sided reads
// are unavailable.
func (s *Server) handleValidate(req []byte) []byte {
	keys, err := decodeKeys(req)
	if err != nil {
		return nil
	}
	words := make([]uint64, len(keys))
	st := s.stores[s.idx]
	for i, k := range keys {
		w, err := st.Version(k)
		if err != nil {
			w = ^uint64(0) // forces validation failure
		}
		words[i] = w
	}
	return encodeWords(words)
}

// handleLog applies logged updates on a replica (Figure 13's logging
// phase); the returned byte is the ACK.
func (s *Server) handleLog(req []byte) []byte {
	p, keys, vals, err := decodeUpdates(req, s.cfg.ValSize)
	if err != nil {
		return []byte{0}
	}
	st := s.stores[p]
	if st == nil {
		return []byte{0}
	}
	for i, k := range keys {
		if err := st.Apply(k, vals[i]); err != nil {
			return []byte{0}
		}
	}
	s.logs.Add(1)
	return []byte{1}
}

// handleCommit installs new values and unlocks on the primary.
func (s *Server) handleCommit(req []byte) []byte {
	_, keys, vals, err := decodeUpdates(req, s.cfg.ValSize)
	if err != nil {
		return []byte{0}
	}
	st := s.stores[s.idx]
	for i, k := range keys {
		if err := st.Unlock(k, vals[i]); err != nil {
			return []byte{0}
		}
	}
	s.commits.Add(1)
	return []byte{1}
}

// handleAbort unlocks the write set without applying.
func (s *Server) handleAbort(req []byte) []byte {
	keys, err := decodeKeys(req)
	if err != nil {
		return []byte{0}
	}
	st := s.stores[s.idx]
	for _, k := range keys {
		st.Unlock(k, nil) //nolint:errcheck // already-unlocked keys are fine on abort races
	}
	s.aborts.Add(1)
	return []byte{1}
}
