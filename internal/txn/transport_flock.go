package txn

import (
	"encoding/binary"
	"fmt"

	"flock/internal/core"
	"flock/internal/fabric"
	"flock/internal/kvstore"
)

// PrimaryRegionName is the exported-region name under which each FLock
// transaction server publishes its primary partition's arena, so
// coordinators can validate read sets with one-sided reads.
const PrimaryRegionName = "flocktx-primary"

// FlockTransport runs the coordinator over FLock connection handles: RPCs
// ride the coalescing RPC layer, and validation uses fl_read against the
// exported primary arenas (the full FLockTX configuration of §8.5).
//
// One FlockTransport serves one coordinator thread.
type FlockTransport struct {
	threads []*core.Thread       // one per server
	regions []*core.RemoteRegion // exported primary arenas
}

// NewFlockServerNode provisions the server side: it exports the primary
// arena plus replica arenas on the FLock node, builds the txn.Server, and
// registers its handlers. Call before clients connect.
func NewFlockServerNode(node *core.Node, cfg Config, idx int) (*Server, error) {
	cfg = cfg.WithDefaults()
	arenas := make(map[int]kvstore.Mem)
	size := kvstore.ArenaSize(cfg.StoreCapacity, cfg.ValSize)
	primary, err := node.ExportMR(PrimaryRegionName, size)
	if err != nil {
		return nil, err
	}
	arenas[idx] = primary
	for p := 0; p < cfg.Servers; p++ {
		if p != idx && cfg.HostsPartition(idx, p) {
			mr, err := node.ExportMR(fmt.Sprintf("flocktx-replica-%d", p), size)
			if err != nil {
				return nil, err
			}
			arenas[p] = mr
		}
	}
	srv, err := NewServer(cfg, idx, arenas)
	if err != nil {
		return nil, err
	}
	srv.Register(registrarFunc(node.RegisterHandler))
	return srv, nil
}

// registrarFunc adapts a RegisterHandler method with a concrete handler
// type to the engine's Registrar interface.
type registrarFunc func(uint32, core.Handler)

func (f registrarFunc) RegisterHandler(rpcID uint32, fn func([]byte) []byte) {
	f(rpcID, fn)
}

// NewFlockTransport connects a client node to every server node and
// attaches their primary arenas. serverIDs[i] must be the fabric address
// of txn server i.
func NewFlockTransport(client *core.Node, serverIDs []fabric.NodeID) (*FlockTransport, error) {
	t := &FlockTransport{}
	for _, id := range serverIDs {
		conn, err := client.Connect(id)
		if err != nil {
			return nil, err
		}
		th := conn.RegisterThread()
		region, err := conn.AttachNamed(PrimaryRegionName)
		if err != nil {
			return nil, err
		}
		t.threads = append(t.threads, th)
		t.regions = append(t.regions, region)
	}
	return t, nil
}

// NewFlockTransportShared builds a transport from already-connected
// connection handles (one per server, in server order); each coordinator
// thread registers its own Thread on the shared connections, which is the
// multi-threaded-client shape the paper evaluates.
func NewFlockTransportShared(conns []*core.Conn) (*FlockTransport, error) {
	t := &FlockTransport{}
	for _, conn := range conns {
		th := conn.RegisterThread()
		region, err := conn.AttachNamed(PrimaryRegionName)
		if err != nil {
			return nil, err
		}
		t.threads = append(t.threads, th)
		t.regions = append(t.regions, region)
	}
	return t, nil
}

// CallMulti pipelines the requests on the asynchronous call path: every
// request is submitted as a Pending before any result is collected, so
// requests to the same server enter its combining queue together and
// coalesce under one doorbell. Completion records route each response to
// its exact request — no sequence-ID matching or out-of-order stash — and
// the async path carries the node's full retry/hedge/dedup plan.
func (t *FlockTransport) CallMulti(servers []int, rpcID uint32, reqs [][]byte) ([][]byte, error) {
	pends := make([]*core.Pending, len(servers))
	fail := func(err error) error {
		for _, p := range pends {
			if p != nil {
				p.Cancel()
			}
		}
		return err
	}
	for i, s := range servers {
		p, err := t.threads[s].CallAsync(rpcID, reqs[i], core.CallOptions{})
		if err != nil {
			return nil, fail(err)
		}
		pends[i] = p
	}
	out := make([][]byte, len(servers))
	for i, p := range pends {
		r, err := p.Wait()
		pends[i] = nil
		if err != nil {
			return nil, fail(err)
		}
		if r.Status != core.StatusOK {
			r.Release()
			return nil, fail(fmt.Errorf("txn: rpc %d failed with status %d", rpcID, r.Status))
		}
		// The caller keeps the payloads past this call, so copy out of the
		// pooled view and recycle the lease.
		out[i] = append([]byte(nil), r.Data...)
		r.Release()
	}
	return out, nil
}

// ReadWord validates with a one-sided read of the primary arena.
func (t *FlockTransport) ReadWord(server, off int) (uint64, bool, error) {
	var buf [8]byte
	if err := t.threads[server].Read(t.regions[server], off, buf[:]); err != nil {
		return 0, true, err
	}
	return binary.LittleEndian.Uint64(buf[:]), true, nil
}

// Threads exposes the per-server FLock threads (benchmarks inspect them).
func (t *FlockTransport) Threads() []*core.Thread { return t.threads }

// assert the interface is satisfied.
var _ Transport = (*FlockTransport)(nil)
