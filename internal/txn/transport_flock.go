package txn

import (
	"encoding/binary"
	"fmt"

	"flock/internal/core"
	"flock/internal/fabric"
	"flock/internal/kvstore"
)

// PrimaryRegionName is the exported-region name under which each FLock
// transaction server publishes its primary partition's arena, so
// coordinators can validate read sets with one-sided reads.
const PrimaryRegionName = "flocktx-primary"

// FlockTransport runs the coordinator over FLock connection handles: RPCs
// ride the coalescing RPC layer, and validation uses fl_read against the
// exported primary arenas (the full FLockTX configuration of §8.5).
//
// One FlockTransport serves one coordinator thread.
type FlockTransport struct {
	threads []*core.Thread       // one per server
	regions []*core.RemoteRegion // exported primary arenas
}

// NewFlockServerNode provisions the server side: it exports the primary
// arena plus replica arenas on the FLock node, builds the txn.Server, and
// registers its handlers. Call before clients connect.
func NewFlockServerNode(node *core.Node, cfg Config, idx int) (*Server, error) {
	cfg = cfg.WithDefaults()
	arenas := make(map[int]kvstore.Mem)
	size := kvstore.ArenaSize(cfg.StoreCapacity, cfg.ValSize)
	primary, err := node.ExportMR(PrimaryRegionName, size)
	if err != nil {
		return nil, err
	}
	arenas[idx] = primary
	for p := 0; p < cfg.Servers; p++ {
		if p != idx && cfg.HostsPartition(idx, p) {
			mr, err := node.ExportMR(fmt.Sprintf("flocktx-replica-%d", p), size)
			if err != nil {
				return nil, err
			}
			arenas[p] = mr
		}
	}
	srv, err := NewServer(cfg, idx, arenas)
	if err != nil {
		return nil, err
	}
	srv.Register(registrarFunc(node.RegisterHandler))
	return srv, nil
}

// registrarFunc adapts a RegisterHandler method with a concrete handler
// type to the engine's Registrar interface.
type registrarFunc func(uint32, core.Handler)

func (f registrarFunc) RegisterHandler(rpcID uint32, fn func([]byte) []byte) {
	f(rpcID, fn)
}

// NewFlockTransport connects a client node to every server node and
// attaches their primary arenas. serverIDs[i] must be the fabric address
// of txn server i.
func NewFlockTransport(client *core.Node, serverIDs []fabric.NodeID) (*FlockTransport, error) {
	t := &FlockTransport{}
	for _, id := range serverIDs {
		conn, err := client.Connect(id)
		if err != nil {
			return nil, err
		}
		th := conn.RegisterThread()
		region, err := conn.AttachNamed(PrimaryRegionName)
		if err != nil {
			return nil, err
		}
		t.threads = append(t.threads, th)
		t.regions = append(t.regions, region)
	}
	return t, nil
}

// NewFlockTransportShared builds a transport from already-connected
// connection handles (one per server, in server order); each coordinator
// thread registers its own Thread on the shared connections, which is the
// multi-threaded-client shape the paper evaluates.
func NewFlockTransportShared(conns []*core.Conn) (*FlockTransport, error) {
	t := &FlockTransport{}
	for _, conn := range conns {
		th := conn.RegisterThread()
		region, err := conn.AttachNamed(PrimaryRegionName)
		if err != nil {
			return nil, err
		}
		t.threads = append(t.threads, th)
		t.regions = append(t.regions, region)
	}
	return t, nil
}

// CallMulti pipelines the requests: send all, then collect all, matching
// responses by sequence ID.
func (t *FlockTransport) CallMulti(servers []int, rpcID uint32, reqs [][]byte) ([][]byte, error) {
	type slot struct {
		server int
		seq    uint64
	}
	slots := make([]slot, len(servers))
	for i, s := range servers {
		seq, err := t.threads[s].SendRPC(rpcID, reqs[i])
		if err != nil {
			return nil, err
		}
		slots[i] = slot{server: s, seq: seq}
	}
	// Stash responses that complete out of order (two requests to the
	// same server in one phase may resolve in either order).
	type key struct {
		server int
		seq    uint64
	}
	stash := make(map[key]core.Response)
	out := make([][]byte, len(servers))
	for i, sl := range slots {
		k := key{sl.server, sl.seq}
		r, hit := stash[k]
		for !hit {
			var err error
			r, err = t.threads[sl.server].RecvRes()
			if err != nil {
				return nil, err
			}
			if r.Seq == sl.seq {
				break
			}
			stash[key{sl.server, r.Seq}] = r
		}
		delete(stash, k)
		if r.Status != core.StatusOK {
			r.Release()
			return nil, fmt.Errorf("txn: rpc %d failed with status %d", rpcID, r.Status)
		}
		// The caller keeps the payloads past this call, so copy out of the
		// pooled view and recycle the lease.
		out[i] = append([]byte(nil), r.Data...)
		r.Release()
	}
	return out, nil
}

// ReadWord validates with a one-sided read of the primary arena.
func (t *FlockTransport) ReadWord(server, off int) (uint64, bool, error) {
	var buf [8]byte
	if err := t.threads[server].Read(t.regions[server], off, buf[:]); err != nil {
		return 0, true, err
	}
	return binary.LittleEndian.Uint64(buf[:]), true, nil
}

// Threads exposes the per-server FLock threads (benchmarks inspect them).
func (t *FlockTransport) Threads() []*core.Thread { return t.threads }

// assert the interface is satisfied.
var _ Transport = (*FlockTransport)(nil)
