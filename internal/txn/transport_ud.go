package txn

import (
	"flock/internal/baseline/udrpc"
	"flock/internal/kvstore"
	"flock/internal/rnic"
)

// UDTransport runs the coordinator over the UD RPC baseline — the
// FaSST-style configuration of §8.5.2. UD has no one-sided verbs
// (Table 1), so ReadWord reports unsupported and the coordinator falls
// back to validation RPCs, exactly the extra round trips FaSST pays.
type UDTransport struct {
	threads []*udrpc.ClientThread // one per server
}

// NewUDServer provisions the server side over a UD RPC server: plain
// process-local arenas (no RDMA registration needed — nothing reads them
// one-sided) and handler registration.
func NewUDServer(usrv *udrpc.Server, cfg Config, idx int) (*Server, error) {
	cfg = cfg.WithDefaults()
	arenas := make(map[int]kvstore.Mem)
	size := kvstore.ArenaSize(cfg.StoreCapacity, cfg.ValSize)
	for p := 0; p < cfg.Servers; p++ {
		if cfg.HostsPartition(idx, p) {
			arenas[p] = kvstore.NewMem(size)
		}
	}
	srv, err := NewServer(cfg, idx, arenas)
	if err != nil {
		return nil, err
	}
	srv.Register(udRegistrar{usrv})
	return srv, nil
}

// udRegistrar adapts udrpc.Server to the engine's Registrar.
type udRegistrar struct{ s *udrpc.Server }

func (r udRegistrar) RegisterHandler(rpcID uint32, fn func([]byte) []byte) {
	r.s.RegisterHandler(rpcID, udrpc.Handler(fn))
}

// NewUDTransport builds the client side: one UD client thread per server.
// servers[i] is txn server i's UD endpoint; the thread hashes onto one of
// its QPs, as FaSST pins client threads to server threads.
func NewUDTransport(dev *rnic.Device, cfg udrpc.Config, servers []*udrpc.Server, threadIdx int) (*UDTransport, error) {
	t := &UDTransport{}
	for _, s := range servers {
		qpns := s.QPNs()
		ct, err := udrpc.NewClientThread(dev, cfg, int(s.Node()), qpns[threadIdx%len(qpns)])
		if err != nil {
			return nil, err
		}
		t.threads = append(t.threads, ct)
	}
	return t, nil
}

// CallMulti pipelines over the datagram clients.
func (t *UDTransport) CallMulti(servers []int, rpcID uint32, reqs [][]byte) ([][]byte, error) {
	type slot struct {
		server int
		seq    uint32
	}
	slots := make([]slot, len(servers))
	for i, s := range servers {
		seq, err := t.threads[s].Send(rpcID, reqs[i])
		if err != nil {
			return nil, err
		}
		slots[i] = slot{server: s, seq: seq}
	}
	// Stash out-of-order completions: under loss and retransmission a
	// later request's response can land first.
	type key struct {
		server int
		seq    uint32
	}
	stash := make(map[key][]byte)
	out := make([][]byte, len(servers))
	for i, sl := range slots {
		k := key{sl.server, sl.seq}
		data, hit := stash[k]
		for !hit {
			r, err := t.threads[sl.server].Recv()
			if err != nil {
				return nil, err
			}
			if r.Seq == sl.seq {
				data = r.Data
				break
			}
			stash[key{sl.server, r.Seq}] = r.Data
		}
		delete(stash, k)
		out[i] = data
	}
	return out, nil
}

// ReadWord is unsupported over UD; the coordinator validates by RPC.
func (t *UDTransport) ReadWord(server, off int) (uint64, bool, error) {
	return 0, false, nil
}

// Retransmits sums software-reliability retransmissions across servers.
func (t *UDTransport) Retransmits() uint64 {
	var n uint64
	for _, th := range t.threads {
		n += th.Retransmits()
	}
	return n
}

var _ Transport = (*UDTransport)(nil)
