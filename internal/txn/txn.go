// Package txn implements FLockTX (§8.5 of the FLock paper): a distributed
// transaction processing system with optimistic concurrency control,
// two-phase commit, and primary-backup replication over a partitioned
// key-value store (internal/kvstore). The protocol follows Figure 13:
//
//  1. Execution: the coordinator sends per-partition RPCs; each primary
//     locks the write-set keys (abort on conflict) and returns values,
//     versions, and — for read-set keys — the arena offset of the
//     version word.
//  2. Validation: the coordinator re-checks read-set versions. Over FLock
//     this is a one-sided RDMA read (fl_read) of the version word; over
//     the UD baseline (FaSST-style) it is an RPC, since UD has no
//     one-sided verbs (Table 1).
//  3. Logging: write-set updates go to every replica of each written
//     partition; replicas ACK after applying.
//  4. Commit: primaries apply the new values and unlock. Aborts unlock
//     without applying.
//
// The engine is transport-agnostic: Transport abstracts pipelined RPCs
// plus the optional one-sided word read, with implementations over FLock
// (transport_flock.go) and over the UD RPC baseline (transport_ud.go) so
// the §8.5 comparison runs both sides on identical logic.
package txn

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// RPC handler IDs used by the engine.
const (
	RPCExec uint32 = 100 + iota
	RPCValidate
	RPCLog
	RPCCommit
	RPCAbort
)

// Exec response status.
const (
	execOK     = 0
	execLocked = 1
)

// Errors.
var (
	// ErrAborted reports an OCC conflict; the transaction may be retried.
	ErrAborted = errors.New("txn: aborted (conflict)")
	errDecode  = errors.New("txn: malformed message")
)

// Config fixes the cluster geometry.
type Config struct {
	// Servers is the number of partitions (one primary each).
	Servers int
	// Replication is the copy count including the primary; the paper
	// uses 3-way. Capped at Servers.
	Replication int
	// StoreCapacity is the slot count per partition store.
	StoreCapacity int
	// ValSize is the value size in bytes; 8 covers both benchmarks.
	ValSize int
}

// WithDefaults fills zero fields.
func (c Config) WithDefaults() Config {
	if c.Servers <= 0 {
		c.Servers = 1
	}
	if c.Replication <= 0 {
		c.Replication = 3
	}
	if c.Replication > c.Servers {
		c.Replication = c.Servers
	}
	if c.StoreCapacity <= 0 {
		c.StoreCapacity = 1 << 16
	}
	if c.ValSize <= 0 {
		c.ValSize = 8
	}
	return c
}

// PartitionOf maps a key to its partition (= primary server index).
func (c Config) PartitionOf(key uint64) int {
	return int(key % uint64(c.Servers))
}

// ReplicasOf lists the replica servers (excluding the primary) of a
// partition.
func (c Config) ReplicasOf(p int) []int {
	out := make([]int, 0, c.Replication-1)
	for i := 1; i < c.Replication; i++ {
		out = append(out, (p+i)%c.Servers)
	}
	return out
}

// HostsPartition reports whether server s stores partition p (as primary
// or replica).
func (c Config) HostsPartition(s, p int) bool {
	if s == p {
		return true
	}
	for _, r := range c.ReplicasOf(p) {
		if r == s {
			return true
		}
	}
	return false
}

// --- Wire encoding -------------------------------------------------------
//
// All engine messages are little-endian with uvarint-free fixed layouts so
// the two transports ship identical bytes.

// execReq: u32 nReads, u32 nWrites, reads..., writes... (u64 keys).
func encodeExecReq(reads, writes []uint64) []byte {
	b := make([]byte, 8+8*(len(reads)+len(writes)))
	binary.LittleEndian.PutUint32(b[0:], uint32(len(reads)))
	binary.LittleEndian.PutUint32(b[4:], uint32(len(writes)))
	off := 8
	for _, k := range append(append([]uint64{}, reads...), writes...) {
		binary.LittleEndian.PutUint64(b[off:], k)
		off += 8
	}
	return b
}

func decodeExecReq(b []byte) (reads, writes []uint64, err error) {
	if len(b) < 8 {
		return nil, nil, errDecode
	}
	nr := int(binary.LittleEndian.Uint32(b[0:]))
	nw := int(binary.LittleEndian.Uint32(b[4:]))
	if len(b) != 8+8*(nr+nw) {
		return nil, nil, errDecode
	}
	off := 8
	for i := 0; i < nr; i++ {
		reads = append(reads, binary.LittleEndian.Uint64(b[off:]))
		off += 8
	}
	for i := 0; i < nw; i++ {
		writes = append(writes, binary.LittleEndian.Uint64(b[off:]))
		off += 8
	}
	return reads, writes, nil
}

// execResp: u32 status, then per read key {u64 verOff, u64 version,
// val[ValSize]}, then per write key {val[ValSize]}.
type execRead struct {
	verOff  uint64
	version uint64
	val     []byte
}

func encodeExecResp(status uint32, reads []execRead, writeVals [][]byte, valSize int) []byte {
	n := 4 + len(reads)*(16+valSize) + len(writeVals)*valSize
	b := make([]byte, n)
	binary.LittleEndian.PutUint32(b[0:], status)
	off := 4
	for _, r := range reads {
		binary.LittleEndian.PutUint64(b[off:], r.verOff)
		binary.LittleEndian.PutUint64(b[off+8:], r.version)
		copy(b[off+16:off+16+valSize], r.val)
		off += 16 + valSize
	}
	for _, v := range writeVals {
		copy(b[off:off+valSize], v)
		off += valSize
	}
	return b
}

func decodeExecResp(b []byte, nReads, nWrites, valSize int) (status uint32, reads []execRead, writeVals [][]byte, err error) {
	if len(b) < 4 {
		return 0, nil, nil, errDecode
	}
	status = binary.LittleEndian.Uint32(b[0:])
	if status != execOK {
		return status, nil, nil, nil
	}
	want := 4 + nReads*(16+valSize) + nWrites*valSize
	if len(b) != want {
		return 0, nil, nil, fmt.Errorf("%w: exec resp %d != %d", errDecode, len(b), want)
	}
	off := 4
	for i := 0; i < nReads; i++ {
		r := execRead{
			verOff:  binary.LittleEndian.Uint64(b[off:]),
			version: binary.LittleEndian.Uint64(b[off+8:]),
			val:     append([]byte(nil), b[off+16:off+16+valSize]...),
		}
		reads = append(reads, r)
		off += 16 + valSize
	}
	for i := 0; i < nWrites; i++ {
		writeVals = append(writeVals, append([]byte(nil), b[off:off+valSize]...))
		off += valSize
	}
	return status, reads, writeVals, nil
}

// keysMsg: u32 count, u64 keys... (validate and abort requests).
func encodeKeys(keys []uint64) []byte {
	b := make([]byte, 4+8*len(keys))
	binary.LittleEndian.PutUint32(b[0:], uint32(len(keys)))
	for i, k := range keys {
		binary.LittleEndian.PutUint64(b[4+8*i:], k)
	}
	return b
}

func decodeKeys(b []byte) ([]uint64, error) {
	if len(b) < 4 {
		return nil, errDecode
	}
	n := int(binary.LittleEndian.Uint32(b[0:]))
	if len(b) != 4+8*n {
		return nil, errDecode
	}
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = binary.LittleEndian.Uint64(b[4+8*i:])
	}
	return keys, nil
}

// wordsMsg: u64 words... (validate response).
func encodeWords(words []uint64) []byte {
	b := make([]byte, 8*len(words))
	for i, w := range words {
		binary.LittleEndian.PutUint64(b[8*i:], w)
	}
	return b
}

func decodeWords(b []byte, n int) ([]uint64, error) {
	if len(b) != 8*n {
		return nil, errDecode
	}
	words := make([]uint64, n)
	for i := range words {
		words[i] = binary.LittleEndian.Uint64(b[8*i:])
	}
	return words, nil
}

// updatesMsg: u32 partition, u32 count, {u64 key, val[ValSize]}...
// (log and commit requests).
func encodeUpdates(partition int, keys []uint64, vals [][]byte, valSize int) []byte {
	b := make([]byte, 8+len(keys)*(8+valSize))
	binary.LittleEndian.PutUint32(b[0:], uint32(partition))
	binary.LittleEndian.PutUint32(b[4:], uint32(len(keys)))
	off := 8
	for i, k := range keys {
		binary.LittleEndian.PutUint64(b[off:], k)
		copy(b[off+8:off+8+valSize], vals[i])
		off += 8 + valSize
	}
	return b
}

func decodeUpdates(b []byte, valSize int) (partition int, keys []uint64, vals [][]byte, err error) {
	if len(b) < 8 {
		return 0, nil, nil, errDecode
	}
	partition = int(binary.LittleEndian.Uint32(b[0:]))
	n := int(binary.LittleEndian.Uint32(b[4:]))
	if len(b) != 8+n*(8+valSize) {
		return 0, nil, nil, errDecode
	}
	off := 8
	for i := 0; i < n; i++ {
		keys = append(keys, binary.LittleEndian.Uint64(b[off:]))
		vals = append(vals, append([]byte(nil), b[off+8:off+8+valSize]...))
		off += 8 + valSize
	}
	return partition, keys, vals, nil
}
