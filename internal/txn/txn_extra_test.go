package txn

import (
	"encoding/binary"
	"sync"
	"testing"

	"flock/internal/baseline/udrpc"
	"flock/internal/fabric"
	"flock/internal/workload"
)

// Additional engine coverage: the UD transport with the §9 coalescing
// extension, read-validation under concurrent writers, and workload-level
// integration.

func TestUDTxnWithCoalescedResponses(t *testing.T) {
	uc := newUDCluster(t, Config{Servers: 3, StoreCapacity: 1 << 10}, fabric.Config{})
	// Replace transports with coalescing-enabled clients.
	loadCluster(t, uc.cfg, uc.servers, keyRange(24), 5)
	tr, err := NewUDTransport(uc.cdev, udrpc.Config{CoalesceResponses: true}, uc.usrvs, 0)
	if err != nil {
		t.Fatal(err)
	}
	co := NewCoordinator(uc.cfg, tr)
	for i := 0; i < 100; i++ {
		txn := workload.Txn{Reads: []uint64{uint64(i % 24)}, Writes: []uint64{uint64((i + 3) % 24)}, Delta: 1}
		if _, err := co.RunRetry(&txn, 50); err != nil {
			t.Fatal(err)
		}
	}
	if co.Commits != 100 {
		t.Fatalf("commits = %d", co.Commits)
	}
}

func TestReadersSeeConsistentSnapshots(t *testing.T) {
	// A writer moves one unit at a time between two keys on different
	// partitions using separate transactions (-1 from key 0, then +1 to
	// key 1); concurrent read-only transactions snapshot both keys. OCC
	// validation guarantees no reader observes a torn write-transaction;
	// after all moves complete, the pair sum is exactly preserved.
	fc := newFlockCluster(t, Config{Servers: 3, StoreCapacity: 1 << 10})
	const pairSum = 1000
	loadCluster(t, fc.cfg, fc.servers, []uint64{0}, pairSum)
	loadCluster(t, fc.cfg, fc.servers, []uint64{1}, 0)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer: 100 move pairs
		defer wg.Done()
		tr, err := NewFlockTransport(fc.client, fc.serverIDs)
		if err != nil {
			t.Error(err)
			return
		}
		co := NewCoordinator(fc.cfg, tr)
		for i := 0; i < 100; i++ {
			down := workload.Txn{Writes: []uint64{0}, Delta: ^uint64(0)} // -1
			up := workload.Txn{Writes: []uint64{1}, Delta: 1}
			if _, err := co.RunRetry(&down, 200); err != nil {
				t.Error(err)
				return
			}
			if _, err := co.RunRetry(&up, 200); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() { // readers: snapshot both keys transactionally
			defer wg.Done()
			tr, err := NewFlockTransport(fc.client, fc.serverIDs)
			if err != nil {
				t.Error(err)
				return
			}
			co := NewCoordinator(fc.cfg, tr)
			for i := 0; i < 150; i++ {
				ro := workload.Txn{Reads: []uint64{0, 1}}
				if _, err := co.RunRetry(&ro, 500); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	var v0, v1 [8]byte
	fc.servers[0].Store(0).Get(0, v0[:])                     //nolint:errcheck
	fc.servers[fc.cfg.PartitionOf(1)].Store(1).Get(1, v1[:]) //nolint:errcheck
	sum := binary.LittleEndian.Uint64(v0[:]) + binary.LittleEndian.Uint64(v1[:])
	if sum != pairSum {
		t.Fatalf("pair sum %d, want %d", sum, pairSum)
	}
	if got := binary.LittleEndian.Uint64(v1[:]); got != 100 {
		t.Fatalf("key 1 = %d, want 100", got)
	}
}

func TestTATPOverUD(t *testing.T) {
	uc := newUDCluster(t, Config{Servers: 3, StoreCapacity: 1 << 12}, fabric.Config{})
	loadCluster(t, uc.cfg, uc.servers, keyRange(1000), 1)
	tr, err := NewUDTransport(uc.cdev, udrpc.Config{}, uc.usrvs, 0)
	if err != nil {
		t.Fatal(err)
	}
	co := NewCoordinator(uc.cfg, tr)
	gen := workload.NewTATP(13, 1000)
	commits := 0
	for i := 0; i < 200; i++ {
		txn := gen.Next()
		if _, err := co.RunRetry(&txn, 30); err != nil {
			t.Fatal(err)
		}
		commits++
	}
	if commits != 200 {
		t.Fatalf("commits = %d", commits)
	}
}

func TestSingleServerDegenerateCluster(t *testing.T) {
	// Servers=1 with Replication clamped to 1: no logging phase at all.
	fc := newFlockCluster(t, Config{Servers: 1, Replication: 3, StoreCapacity: 1 << 8})
	if fc.cfg.Replication != 1 {
		t.Fatalf("replication not clamped: %d", fc.cfg.Replication)
	}
	loadCluster(t, fc.cfg, fc.servers, keyRange(8), 0)
	co := fc.coordinator(t)
	w := workload.Txn{Reads: []uint64{1}, Writes: []uint64{2}, Delta: 9}
	if err := co.Run(&w); err != nil {
		t.Fatal(err)
	}
	_, _, _, logs := fc.servers[0].Stats()
	if logs != 0 {
		t.Fatalf("replication-1 cluster logged %d records", logs)
	}
}
