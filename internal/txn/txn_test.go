package txn

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"testing"

	"flock/internal/baseline/udrpc"
	"flock/internal/core"
	"flock/internal/fabric"
	"flock/internal/rnic"
	"flock/internal/workload"
)

// --- Wire encoding tests --------------------------------------------------

func TestExecReqRoundTrip(t *testing.T) {
	reads := []uint64{1, 5, 9}
	writes := []uint64{2, 4}
	r, w, err := decodeExecReq(encodeExecReq(reads, writes))
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(r) != fmt.Sprint(reads) || fmt.Sprint(w) != fmt.Sprint(writes) {
		t.Fatalf("round trip: %v %v", r, w)
	}
	if _, _, err := decodeExecReq([]byte{1, 2}); err == nil {
		t.Fatal("short exec req accepted")
	}
}

func TestExecRespRoundTrip(t *testing.T) {
	reads := []execRead{
		{verOff: 100, version: 7, val: []byte{1, 0, 0, 0, 0, 0, 0, 0}},
		{verOff: 200, version: 9, val: []byte{2, 0, 0, 0, 0, 0, 0, 0}},
	}
	writeVals := [][]byte{{3, 0, 0, 0, 0, 0, 0, 0}}
	b := encodeExecResp(execOK, reads, writeVals, 8)
	status, r, w, err := decodeExecResp(b, 2, 1, 8)
	if err != nil || status != execOK {
		t.Fatal(err, status)
	}
	if r[0].verOff != 100 || r[1].version != 9 || !bytes.Equal(w[0], writeVals[0]) {
		t.Fatalf("round trip: %+v %v", r, w)
	}
	// Locked status short-circuits.
	status, _, _, err = decodeExecResp(encodeExecResp(execLocked, nil, nil, 8), 2, 1, 8)
	if err != nil || status != execLocked {
		t.Fatal("locked status lost")
	}
}

func TestKeysAndWordsRoundTrip(t *testing.T) {
	keys := []uint64{3, 1, 4, 1, 5}
	got, err := decodeKeys(encodeKeys(keys))
	if err != nil || fmt.Sprint(got) != fmt.Sprint(keys) {
		t.Fatalf("keys: %v %v", got, err)
	}
	words := []uint64{10, 20, 30}
	w, err := decodeWords(encodeWords(words), 3)
	if err != nil || fmt.Sprint(w) != fmt.Sprint(words) {
		t.Fatalf("words: %v %v", w, err)
	}
	if _, err := decodeWords(encodeWords(words), 4); err == nil {
		t.Fatal("wrong count accepted")
	}
}

func TestUpdatesRoundTrip(t *testing.T) {
	keys := []uint64{7, 8}
	vals := [][]byte{{1, 1, 1, 1, 1, 1, 1, 1}, {2, 2, 2, 2, 2, 2, 2, 2}}
	p, k, v, err := decodeUpdates(encodeUpdates(3, keys, vals, 8), 8)
	if err != nil || p != 3 {
		t.Fatal(err, p)
	}
	if fmt.Sprint(k) != fmt.Sprint(keys) || !bytes.Equal(v[1], vals[1]) {
		t.Fatalf("round trip: %v %v", k, v)
	}
}

func TestPlacement(t *testing.T) {
	cfg := Config{Servers: 3, Replication: 3}.WithDefaults()
	if cfg.PartitionOf(7) != 1 {
		t.Fatalf("partition of 7 = %d", cfg.PartitionOf(7))
	}
	reps := cfg.ReplicasOf(2)
	if len(reps) != 2 || reps[0] != 0 || reps[1] != 1 {
		t.Fatalf("replicas of 2: %v", reps)
	}
	// With 3 servers and 3-way replication everyone hosts everything.
	for s := 0; s < 3; s++ {
		for p := 0; p < 3; p++ {
			if !cfg.HostsPartition(s, p) {
				t.Fatalf("server %d should host partition %d", s, p)
			}
		}
	}
	// Replication capped by server count.
	small := Config{Servers: 2, Replication: 5}.WithDefaults()
	if small.Replication != 2 {
		t.Fatalf("replication = %d", small.Replication)
	}
}

// --- Cluster harnesses ------------------------------------------------------

// flockCluster builds S txn servers over FLock plus one client node.
type flockCluster struct {
	net       *core.Network
	cfg       Config
	servers   []*Server
	serverIDs []fabric.NodeID
	client    *core.Node
}

func newFlockCluster(t *testing.T, cfg Config) *flockCluster {
	t.Helper()
	cfg = cfg.WithDefaults()
	nw := core.NewNetwork(fabric.Config{})
	t.Cleanup(nw.Close)
	fc := &flockCluster{net: nw, cfg: cfg}
	for i := 0; i < cfg.Servers; i++ {
		id := fabric.NodeID(100 + i)
		node, err := nw.NewNode(id, core.Options{QPsPerConn: 2}, 0)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := NewFlockServerNode(node, cfg, i)
		if err != nil {
			t.Fatal(err)
		}
		if err := node.Serve(); err != nil {
			t.Fatal(err)
		}
		fc.servers = append(fc.servers, srv)
		fc.serverIDs = append(fc.serverIDs, id)
	}
	client, err := nw.NewNode(1, core.Options{QPsPerConn: 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	fc.client = client
	return fc
}

func (fc *flockCluster) coordinator(t *testing.T) *Coordinator {
	t.Helper()
	tr, err := NewFlockTransport(fc.client, fc.serverIDs)
	if err != nil {
		t.Fatal(err)
	}
	return NewCoordinator(fc.cfg, tr)
}

// loadKeys inserts key → initial on every hosting store.
func loadCluster(t *testing.T, cfg Config, servers []*Server, keys []uint64, initial uint64) {
	t.Helper()
	var buf [8]byte
	for _, k := range keys {
		binary.LittleEndian.PutUint64(buf[:], initial)
		p := cfg.PartitionOf(k)
		for s, srv := range servers {
			if cfg.HostsPartition(s, p) {
				if err := srv.Store(p).Insert(k, buf[:]); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

func keyRange(n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = uint64(i)
	}
	return out
}

// --- End-to-end over FLock ---------------------------------------------------

func TestFlockTxnCommitReadWrite(t *testing.T) {
	fc := newFlockCluster(t, Config{Servers: 3, StoreCapacity: 1 << 10})
	loadCluster(t, fc.cfg, fc.servers, keyRange(30), 100)
	co := fc.coordinator(t)

	// Read-only transaction.
	ro := workload.Txn{Reads: []uint64{1, 2, 17}}
	if err := co.Run(&ro); err != nil {
		t.Fatal(err)
	}
	// Read-write across partitions.
	rw := workload.Txn{Reads: []uint64{3}, Writes: []uint64{4, 5}, Delta: 50}
	if err := co.Run(&rw); err != nil {
		t.Fatal(err)
	}
	// Verify values on primaries.
	for _, k := range []uint64{4, 5} {
		p := fc.cfg.PartitionOf(k)
		var buf [8]byte
		if _, err := fc.servers[p].Store(p).Get(k, buf[:]); err != nil {
			t.Fatal(err)
		}
		if got := binary.LittleEndian.Uint64(buf[:]); got != 150 {
			t.Fatalf("key %d = %d, want 150", k, got)
		}
	}
	if co.Commits != 2 || co.Aborts != 0 {
		t.Fatalf("commits=%d aborts=%d", co.Commits, co.Aborts)
	}
}

func TestFlockTxnReplication(t *testing.T) {
	fc := newFlockCluster(t, Config{Servers: 3, Replication: 3, StoreCapacity: 1 << 10})
	loadCluster(t, fc.cfg, fc.servers, keyRange(10), 0)
	co := fc.coordinator(t)
	w := workload.Txn{Writes: []uint64{6}, Delta: 42}
	if err := co.Run(&w); err != nil {
		t.Fatal(err)
	}
	p := fc.cfg.PartitionOf(6)
	// Every replica of partition p holds the new value.
	for s := 0; s < fc.cfg.Servers; s++ {
		if !fc.cfg.HostsPartition(s, p) {
			continue
		}
		var buf [8]byte
		if _, err := fc.servers[s].Store(p).Get(6, buf[:]); err != nil {
			t.Fatalf("server %d: %v", s, err)
		}
		if got := binary.LittleEndian.Uint64(buf[:]); got != 42 {
			t.Fatalf("server %d sees %d, want 42", s, got)
		}
	}
	// Logging actually ran on the two non-primary replicas.
	for s := 0; s < fc.cfg.Servers; s++ {
		if s == p {
			continue
		}
		_, _, _, logs := fc.servers[s].Stats()
		if logs == 0 {
			t.Fatalf("server %d logged nothing", s)
		}
	}
}

func TestFlockTxnConflictAborts(t *testing.T) {
	fc := newFlockCluster(t, Config{Servers: 1, Replication: 1, StoreCapacity: 1 << 10})
	loadCluster(t, fc.cfg, fc.servers, keyRange(4), 0)
	// Lock key 1 directly on the store, then run a txn writing it.
	if err := fc.servers[0].Store(0).Lock(1); err != nil {
		t.Fatal(err)
	}
	co := fc.coordinator(t)
	w := workload.Txn{Writes: []uint64{1}, Delta: 5}
	if err := co.Run(&w); err != ErrAborted {
		t.Fatalf("expected ErrAborted, got %v", err)
	}
	fc.servers[0].Store(0).Unlock(1, nil) //nolint:errcheck
	// Retry now succeeds.
	if _, err := co.RunRetry(&w, 5); err != nil {
		t.Fatal(err)
	}
}

func TestFlockTxnValidationCatchesChange(t *testing.T) {
	fc := newFlockCluster(t, Config{Servers: 1, Replication: 1, StoreCapacity: 1 << 10})
	loadCluster(t, fc.cfg, fc.servers, keyRange(4), 0)
	st := fc.servers[0].Store(0)

	// Interpose: change key 2 between execution and validation by using
	// a coordinator whose transport mutates the store on first ReadWord.
	base, err := NewFlockTransport(fc.client, fc.serverIDs)
	if err != nil {
		t.Fatal(err)
	}
	mut := &mutatingTransport{Transport: base, store: st, key: 2}
	co := NewCoordinator(fc.cfg, mut)
	txn := workload.Txn{Reads: []uint64{2}, Writes: []uint64{3}, Delta: 1}
	if err := co.Run(&txn); err != ErrAborted {
		t.Fatalf("stale read not caught: %v", err)
	}
	// The write lock was released by the abort: a fresh run commits.
	if err := co.Run(&txn); err != nil {
		t.Fatalf("post-abort run: %v", err)
	}
}

// mutatingTransport bumps a key's version right before the first
// validation read, simulating a concurrent writer between phases.
type mutatingTransport struct {
	Transport
	store interface {
		Apply(key uint64, val []byte) error
	}
	key  uint64
	done bool
}

func (m *mutatingTransport) ReadWord(server, off int) (uint64, bool, error) {
	if !m.done {
		m.done = true
		m.store.Apply(m.key, make([]byte, 8)) //nolint:errcheck
	}
	return m.Transport.ReadWord(server, off)
}

func TestFlockTxnConcurrentInvariant(t *testing.T) {
	// N coordinators deposit into overlapping accounts; the sum of all
	// balances must equal the sum of committed deltas (serializability's
	// observable effect for this workload).
	fc := newFlockCluster(t, Config{Servers: 3, StoreCapacity: 1 << 12})
	keys := keyRange(16)
	loadCluster(t, fc.cfg, fc.servers, keys, 0)

	const nCoord = 6
	const perCoord = 60
	var wg sync.WaitGroup
	var mu sync.Mutex
	var committedSum uint64
	for g := 0; g < nCoord; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tr, err := NewFlockTransport(fc.client, fc.serverIDs)
			if err != nil {
				t.Error(err)
				return
			}
			co := NewCoordinator(fc.cfg, tr)
			var localSum uint64
			for i := 0; i < perCoord; i++ {
				k1 := uint64((g*7 + i) % len(keys))
				k2 := uint64((g*13 + i*3) % len(keys))
				if k1 == k2 {
					k2 = (k2 + 1) % uint64(len(keys))
				}
				txn := workload.Txn{Writes: []uint64{k1, k2}, Delta: 1}
				if _, err := co.RunRetry(&txn, 100); err != nil {
					t.Error(err)
					return
				}
				localSum += 2 // two keys, +1 each
			}
			mu.Lock()
			committedSum += localSum
			mu.Unlock()
		}(g)
	}
	wg.Wait()

	var total uint64
	var buf [8]byte
	for _, k := range keys {
		p := fc.cfg.PartitionOf(k)
		if _, err := fc.servers[p].Store(p).Get(k, buf[:]); err != nil {
			t.Fatal(err)
		}
		total += binary.LittleEndian.Uint64(buf[:])
	}
	if total != committedSum {
		t.Fatalf("balance sum %d != committed %d (lost or double-applied updates)", total, committedSum)
	}
}

// TestFlockTransportConnectErrors covers the client-side error paths.
func TestFlockTransportErrors(t *testing.T) {
	nw := core.NewNetwork(fabric.Config{})
	defer nw.Close()
	client, _ := nw.NewNode(1, core.Options{}, 0)
	if _, err := NewFlockTransport(client, []fabric.NodeID{55}); err == nil {
		t.Fatal("connect to unknown server succeeded")
	}
}

// --- End-to-end over the UD baseline (FaSST-style) -------------------------

type udCluster struct {
	cfg     Config
	servers []*Server
	usrvs   []*udrpc.Server
	cdev    *rnic.Device
}

func newUDCluster(t *testing.T, cfg Config, fcfg fabric.Config) *udCluster {
	t.Helper()
	cfg = cfg.WithDefaults()
	fab := fabric.New(fcfg)
	uc := &udCluster{cfg: cfg}
	for i := 0; i < cfg.Servers; i++ {
		dev, err := rnic.NewDevice(fab, rnic.Config{Node: fabric.NodeID(100 + i)})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(dev.Close)
		usrv, err := udrpc.NewServer(dev, udrpc.Config{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(usrv.Close)
		srv, err := NewUDServer(usrv, cfg, i)
		if err != nil {
			t.Fatal(err)
		}
		uc.servers = append(uc.servers, srv)
		uc.usrvs = append(uc.usrvs, usrv)
	}
	cdev, err := rnic.NewDevice(fab, rnic.Config{Node: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cdev.Close)
	uc.cdev = cdev
	return uc
}

func TestUDTxnCommit(t *testing.T) {
	uc := newUDCluster(t, Config{Servers: 3, StoreCapacity: 1 << 10}, fabric.Config{})
	loadCluster(t, uc.cfg, uc.servers, keyRange(30), 100)
	tr, err := NewUDTransport(uc.cdev, udrpc.Config{}, uc.usrvs, 0)
	if err != nil {
		t.Fatal(err)
	}
	co := NewCoordinator(uc.cfg, tr)
	txn := workload.Txn{Reads: []uint64{1}, Writes: []uint64{2, 7}, Delta: 11}
	if err := co.Run(&txn); err != nil {
		t.Fatal(err)
	}
	for _, k := range []uint64{2, 7} {
		p := uc.cfg.PartitionOf(k)
		var buf [8]byte
		uc.servers[p].Store(p).Get(k, buf[:]) //nolint:errcheck
		if got := binary.LittleEndian.Uint64(buf[:]); got != 111 {
			t.Fatalf("key %d = %d, want 111", k, got)
		}
	}
}

func TestUDTxnUnderPacketLoss(t *testing.T) {
	// 10% loss: software reliability keeps transactions correct.
	uc := newUDCluster(t, Config{Servers: 3, StoreCapacity: 1 << 10},
		fabric.Config{UDLossProb: 0.1, Seed: 3})
	keys := keyRange(8)
	loadCluster(t, uc.cfg, uc.servers, keys, 0)
	tr, err := NewUDTransport(uc.cdev, udrpc.Config{}, uc.usrvs, 0)
	if err != nil {
		t.Fatal(err)
	}
	co := NewCoordinator(uc.cfg, tr)
	var sum uint64
	for i := 0; i < 60; i++ {
		txn := workload.Txn{Writes: []uint64{uint64(i) % 8}, Delta: 1}
		if _, err := co.RunRetry(&txn, 50); err != nil {
			t.Fatal(err)
		}
		sum++
	}
	var total uint64
	var buf [8]byte
	for _, k := range keys {
		p := uc.cfg.PartitionOf(k)
		uc.servers[p].Store(p).Get(k, buf[:]) //nolint:errcheck
		total += binary.LittleEndian.Uint64(buf[:])
	}
	if total != sum {
		t.Fatalf("sum %d != committed %d under loss", total, sum)
	}
	if tr.Retransmits() == 0 {
		t.Fatal("no retransmissions under 10% loss")
	}
}

// --- Benchmark-shaped smoke tests -------------------------------------------

func TestTATPOverFlock(t *testing.T) {
	fc := newFlockCluster(t, Config{Servers: 3, StoreCapacity: 1 << 12})
	loadCluster(t, fc.cfg, fc.servers, keyRange(1000), 1)
	co := fc.coordinator(t)
	gen := workload.NewTATP(7, 1000)
	commits, aborts := 0, 0
	for i := 0; i < 300; i++ {
		txn := gen.Next()
		switch err := co.Run(&txn); err {
		case nil:
			commits++
		case ErrAborted:
			aborts++
		default:
			t.Fatal(err)
		}
	}
	if commits == 0 {
		t.Fatal("no TATP transaction committed")
	}
	t.Logf("TATP: %d commits, %d aborts", commits, aborts)
}

func TestSmallbankOverFlock(t *testing.T) {
	fc := newFlockCluster(t, Config{Servers: 3, StoreCapacity: 1 << 12})
	loadCluster(t, fc.cfg, fc.servers, keyRange(2000), 1000)
	co := fc.coordinator(t)
	gen := workload.NewSmallbank(11, 1000)
	commits := 0
	for i := 0; i < 300; i++ {
		txn := gen.Next()
		if _, err := co.RunRetry(&txn, 20); err != nil {
			t.Fatal(err)
		}
		commits++
	}
	if commits != 300 {
		t.Fatalf("commits = %d", commits)
	}
}
