// Package workload generates the transaction mixes of the FLockTX
// evaluation (§8.5): TATP, the read-intensive telecom benchmark (70 %
// single-key reads, 10 % multi-key reads, 20 % updates), and Smallbank,
// the write-intensive banking benchmark (85 % of transactions update
// keys; 4 % of the accounts receive 90 % of the traffic). It also provides
// the synthetic RPC size mixes of §8.2/§8.3.
//
// Generators are deterministic for a given seed and are not safe for
// concurrent use; give each client thread its own.
package workload

import (
	"flock/internal/stats"
)

// TxnKind classifies a generated transaction for accounting.
type TxnKind int

// Transaction kinds across both benchmarks.
const (
	// TATP (the paper runs the standard mix; names follow the benchmark).
	TATPGetSubscriberData TxnKind = iota // single-key read (35%... see mix)
	TATPGetNewDestination                // multi-key read
	TATPGetAccessData                    // single-key read
	TATPUpdateSubscriber                 // single-key update
	TATPUpdateLocation                   // single-key update
	// Smallbank.
	SBBalance         // read-only: checking + savings
	SBDepositChecking // update checking
	SBTransactSavings // update savings
	SBAmalgamate      // move both balances of A to checking of B
	SBWriteCheck      // read both, update checking
	SBSendPayment     // move between two checkings
)

// String names the transaction kind.
func (k TxnKind) String() string {
	switch k {
	case TATPGetSubscriberData:
		return "tatp.get-subscriber-data"
	case TATPGetNewDestination:
		return "tatp.get-new-destination"
	case TATPGetAccessData:
		return "tatp.get-access-data"
	case TATPUpdateSubscriber:
		return "tatp.update-subscriber"
	case TATPUpdateLocation:
		return "tatp.update-location"
	case SBBalance:
		return "smallbank.balance"
	case SBDepositChecking:
		return "smallbank.deposit-checking"
	case SBTransactSavings:
		return "smallbank.transact-savings"
	case SBAmalgamate:
		return "smallbank.amalgamate"
	case SBWriteCheck:
		return "smallbank.write-check"
	case SBSendPayment:
		return "smallbank.send-payment"
	default:
		return "unknown"
	}
}

// Txn is one generated transaction: the keys it reads and the keys it
// writes (writes are read-modify-write; the execution engine reads them
// too). Apply computes the new write-set values from the current values
// of reads ∪ writes, in that order; nil Apply writes Delta-filled values.
type Txn struct {
	Kind   TxnKind
	Reads  []uint64
	Writes []uint64
	// Delta parameterizes the update (deposit amount etc.); the engines
	// fold it into written values so runs are deterministic.
	Delta uint64
}

// ReadOnly reports whether the transaction has an empty write set.
func (t *Txn) ReadOnly() bool { return len(t.Writes) == 0 }

// TATP generates the TATP mix over nSubscribers per partition across
// nPartitions; keys are globally partitioned as key % nPartitions →
// partition (matching the engines' placement).
type TATP struct {
	rng         *stats.RNG
	subscribers uint64
}

// NewTATP creates a generator over the given total subscriber count (the
// paper uses one million per server).
func NewTATP(seed, subscribers uint64) *TATP {
	return &TATP{rng: stats.NewRNG(seed), subscribers: subscribers}
}

// Next draws one transaction. Mix per the TATP spec as the paper
// summarizes it: 70 % single-key reads, 10 % multi-key reads, 20 %
// updates.
func (g *TATP) Next() Txn {
	sub := g.rng.Uint64n(g.subscribers)
	switch p := g.rng.Uint64n(100); {
	case p < 35:
		return Txn{Kind: TATPGetSubscriberData, Reads: []uint64{sub}}
	case p < 70:
		return Txn{Kind: TATPGetAccessData, Reads: []uint64{sub}}
	case p < 80:
		// Multi-key read: subscriber, special facility, call forwarding.
		k2 := g.rng.Uint64n(g.subscribers)
		k3 := g.rng.Uint64n(g.subscribers)
		return Txn{Kind: TATPGetNewDestination, Reads: dedup(sub, k2, k3)}
	case p < 94:
		return Txn{Kind: TATPUpdateLocation, Writes: []uint64{sub}, Delta: g.rng.Uint64n(1 << 16)}
	default:
		return Txn{Kind: TATPUpdateSubscriber, Writes: []uint64{sub}, Delta: g.rng.Uint64n(1 << 16)}
	}
}

// Smallbank generates the Smallbank mix over nAccounts. Each account has
// two keys: checking (2·acct) and savings (2·acct+1). The paper's skew:
// 4 % of accounts get 90 % of the traffic.
type Smallbank struct {
	rng      *stats.RNG
	hot      *stats.HotSet
	accounts uint64
}

// NewSmallbank creates a generator over nAccounts with the paper's
// hot-set skew.
func NewSmallbank(seed, nAccounts uint64) *Smallbank {
	rng := stats.NewRNG(seed)
	return &Smallbank{
		rng:      rng,
		hot:      stats.NewHotSet(rng, nAccounts, 0.04, 0.90),
		accounts: nAccounts,
	}
}

// CheckingKey and SavingsKey map an account to its two keys.
func CheckingKey(acct uint64) uint64 { return acct * 2 }

// SavingsKey maps an account to its savings key.
func SavingsKey(acct uint64) uint64 { return acct*2 + 1 }

// Next draws one transaction. The standard Smallbank mix is uniform over
// six transaction types, five of which write — ~85 % write transactions
// when weighted as in the paper's summary.
func (g *Smallbank) Next() Txn {
	a := g.hot.Next()
	amount := g.rng.Uint64n(100) + 1
	switch g.rng.Uint64n(100) {
	case 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14: // 15% balance (read-only)
		return Txn{Kind: SBBalance, Reads: []uint64{CheckingKey(a), SavingsKey(a)}}
	default:
	}
	switch g.rng.Uint64n(5) {
	case 0:
		return Txn{Kind: SBDepositChecking, Writes: []uint64{CheckingKey(a)}, Delta: amount}
	case 1:
		return Txn{Kind: SBTransactSavings, Writes: []uint64{SavingsKey(a)}, Delta: amount}
	case 2:
		b := g.hot.Next()
		if b == a {
			b = (a + 1) % g.accounts
		}
		return Txn{
			Kind:   SBAmalgamate,
			Writes: []uint64{CheckingKey(a), SavingsKey(a), CheckingKey(b)},
			Delta:  amount,
		}
	case 3:
		return Txn{
			Kind:   SBWriteCheck,
			Reads:  []uint64{SavingsKey(a)},
			Writes: []uint64{CheckingKey(a)},
			Delta:  amount,
		}
	default:
		b := g.hot.Next()
		if b == a {
			b = (a + 1) % g.accounts
		}
		return Txn{
			Kind:   SBSendPayment,
			Writes: []uint64{CheckingKey(a), CheckingKey(b)},
			Delta:  amount,
		}
	}
}

// dedup returns the distinct keys among the arguments, order-preserving.
func dedup(keys ...uint64) []uint64 {
	out := keys[:0]
	for i, k := range keys {
		seen := false
		for j := 0; j < i; j++ {
			if keys[j] == k {
				seen = true
				break
			}
		}
		if !seen {
			out = append(out, k)
		}
	}
	return out
}

// SizeMix draws request payload sizes for the §8.3.2 experiment: 90 % of
// threads issue small requests, 10 % issue large ones.
type SizeMix struct {
	// Small and Large are the two payload sizes.
	Small, Large int
	// LargeFrac is the fraction of threads issuing Large requests.
	LargeFrac float64
}

// SizeForThread deterministically assigns a payload size to a thread
// index, giving the first ⌈LargeFrac·n⌉ threads the large size.
func (m SizeMix) SizeForThread(thread, totalThreads int) int {
	largeThreads := int(m.LargeFrac*float64(totalThreads) + 0.5)
	if thread < largeThreads {
		return m.Large
	}
	return m.Small
}
