package workload

import (
	"testing"
)

func TestTATPMix(t *testing.T) {
	g := NewTATP(1, 1_000_000)
	const n = 100_000
	var singleReads, multiReads, updates int
	kinds := map[TxnKind]int{}
	for i := 0; i < n; i++ {
		txn := g.Next()
		kinds[txn.Kind]++
		switch {
		case txn.ReadOnly() && len(txn.Reads) == 1:
			singleReads++
		case txn.ReadOnly():
			multiReads++
		default:
			updates++
		}
		for _, k := range append(txn.Reads, txn.Writes...) {
			if k >= 1_000_000 {
				t.Fatalf("key %d out of range", k)
			}
		}
	}
	// Paper: 70% single-key reads, 10% multi-key reads, 20% updates.
	check := func(name string, got int, want float64) {
		frac := float64(got) / n
		if frac < want-0.02 || frac > want+0.02 {
			t.Errorf("%s fraction %.3f, want ~%.2f", name, frac, want)
		}
	}
	check("single-read", singleReads, 0.70)
	// Multi-key reads occasionally dedup to one key; allow wider band.
	if frac := float64(multiReads) / n; frac < 0.07 || frac > 0.11 {
		t.Errorf("multi-read fraction %.3f, want ~0.10", frac)
	}
	check("update", updates, 0.20)
	for k, c := range kinds {
		if c == 0 {
			t.Errorf("kind %v never generated", k)
		}
	}
}

func TestTATPDeterminism(t *testing.T) {
	a, b := NewTATP(42, 1000), NewTATP(42, 1000)
	for i := 0; i < 1000; i++ {
		x, y := a.Next(), b.Next()
		if x.Kind != y.Kind || len(x.Reads) != len(y.Reads) || len(x.Writes) != len(y.Writes) {
			t.Fatalf("divergence at %d", i)
		}
	}
}

func TestSmallbankMix(t *testing.T) {
	g := NewSmallbank(2, 100_000)
	const n = 100_000
	writes := 0
	kinds := map[TxnKind]int{}
	hotAccesses, total := 0, 0
	for i := 0; i < n; i++ {
		txn := g.Next()
		kinds[txn.Kind]++
		if !txn.ReadOnly() {
			writes++
		}
		for _, k := range append(txn.Reads, txn.Writes...) {
			total++
			if k/2 < 4000 { // hot region: 4% of 100k accounts
				hotAccesses++
			}
		}
	}
	// Paper: 85% of transactions update keys.
	if frac := float64(writes) / n; frac < 0.82 || frac > 0.88 {
		t.Errorf("write fraction %.3f, want ~0.85", frac)
	}
	// Paper: 4% of accounts receive 90% of accesses.
	if frac := float64(hotAccesses) / float64(total); frac < 0.85 || frac > 0.95 {
		t.Errorf("hot access fraction %.3f, want ~0.90", frac)
	}
	for _, kind := range []TxnKind{SBBalance, SBDepositChecking, SBTransactSavings, SBAmalgamate, SBWriteCheck, SBSendPayment} {
		if kinds[kind] == 0 {
			t.Errorf("kind %v never generated", kind)
		}
	}
}

func TestSmallbankKeysDistinct(t *testing.T) {
	g := NewSmallbank(3, 100)
	for i := 0; i < 10_000; i++ {
		txn := g.Next()
		seen := map[uint64]bool{}
		for _, k := range txn.Writes {
			if seen[k] {
				t.Fatalf("%v has duplicate write key %d", txn.Kind, k)
			}
			seen[k] = true
		}
	}
}

func TestCheckingSavingsKeys(t *testing.T) {
	if CheckingKey(5) != 10 || SavingsKey(5) != 11 {
		t.Fatal("account key mapping broken")
	}
	if CheckingKey(0) == SavingsKey(0) {
		t.Fatal("keys collide")
	}
}

func TestDedup(t *testing.T) {
	got := dedup(1, 2, 1, 3, 2)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("dedup: %v", got)
	}
}

func TestSizeMix(t *testing.T) {
	m := SizeMix{Small: 64, Large: 1024, LargeFrac: 0.1}
	large := 0
	const threads = 320
	for th := 0; th < threads; th++ {
		if m.SizeForThread(th, threads) == 1024 {
			large++
		}
	}
	if large != 32 {
		t.Fatalf("%d large threads, want 32 (10%% of %d)", large, threads)
	}
	// A thread's size is stable.
	if m.SizeForThread(5, threads) != m.SizeForThread(5, threads) {
		t.Fatal("size not deterministic")
	}
}

func TestTxnKindStrings(t *testing.T) {
	for k := TATPGetSubscriberData; k <= SBSendPayment; k++ {
		if k.String() == "unknown" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if TxnKind(99).String() != "unknown" {
		t.Fatal("bogus kind named")
	}
}
